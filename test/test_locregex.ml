(* Tests for the location-aware derivative layer (lib/locregex,
   DESIGN.md §15): parser syntax and error offsets (lookarounds, POSIX
   bracket classes, class algebra), location-indexed nullability and
   derivative semantics via the engine (Locmatch) against the
   brute-force all-splits oracle (Locref), anchor elimination (lower)
   against word enumeration, and chunk-split invariance of anchored
   streaming. *)

module R = Sbd_service.Default.R
module P = Sbd_service.Default.P
module L = Sbd_service.Default.LR
module LP = Sbd_service.Default.LP
module LRef = Sbd_service.Default.LRef
module Ref = Sbd_service.Default.Ref
module LEng = Sbd_service.Default.LM
module LA = Sbd_service.Default.LA
module Byteclass = Sbd_engine.Byteclass

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let lre s =
  match LP.parse s with
  | Ok r -> r
  | Error (pos, msg) ->
    Alcotest.fail (Printf.sprintf "parse %S: %d: %s" s pos msg)

let re s =
  match P.parse s with
  | Ok r -> r
  | Error (pos, msg) ->
    Alcotest.fail (Printf.sprintf "parse %S: %d: %s" s pos msg)

(* Lossy-decode [s] exactly as the engine segments it: the code points
   and the byte offset of each scalar boundary. *)
let segment s =
  let n = String.length s in
  let cps = ref [] and bnd = ref [ 0 ] and pos = ref 0 in
  while !pos < n do
    let cp, pos' = Byteclass.scalar_forward s !pos n in
    cps := cp :: !cps;
    bnd := pos' :: !bnd;
    pos := pos'
  done;
  (Array.of_list (List.rev !cps), Array.of_list (List.rev !bnd))

(* -- parser: syntax ------------------------------------------------------- *)

let test_parse_syntax () =
  (* anchors and lookarounds build the expected nodes *)
  check "begin" true (L.equal (lre "^") L.begin_);
  check "end" true (L.equal (lre "$") L.end_);
  check "lookahead" true
    (L.equal (lre "(?=ab)") (L.look ~behind:false ~neg:false (re "ab")));
  check "neg lookahead" true
    (L.equal (lre "(?!ab)") (L.look ~behind:false ~neg:true (re "ab")));
  check "lookbehind" true
    (L.equal (lre "(?<=ab)") (L.look ~behind:true ~neg:false (re "ab")));
  check "neg lookbehind" true
    (L.equal (lre "(?<!ab)") (L.look ~behind:true ~neg:true (re "ab")));
  (* plain sub-syntax is untouched and round-trips through of_plain *)
  check "plain embedding" true
    (L.equal (lre "a(b|c)*") (L.of_plain (re "a(b|c)*")));
  (* to_plain inverts of_plain on zw-free terms *)
  (match L.to_plain (lre "a(b|c)*[0-9]{2,}") with
  | Some p -> check "to_plain" true (R.equal p (re "a(b|c)*[0-9]{2,}"))
  | None -> Alcotest.fail "to_plain returned None on a plain term");
  check "zw-term has no plain form" true (L.to_plain (lre "^a") = None);
  (* pp round-trips through the parser *)
  List.iter
    (fun s ->
      let t = lre s in
      check (Printf.sprintf "pp roundtrip %S" s) true
        (L.equal t (lre (L.to_string t))))
    [ "^a+b$"; "(?=ab)c*"; "(?<!x)y|z&~w"; "^(a|$)"; "(?<=a[0-9])b" ];
  (* the plain parser keeps '^'/'$' literal: opting into anchors is the
     extended grammar's job *)
  check "plain caret literal" true (R.equal (re "^") (re "\\^"));
  check "plain dollar literal" true (R.equal (re "a$b") (re "a\\$b"))

(* -- parser: POSIX classes and class algebra ------------------------------ *)

let test_parse_posix () =
  (* named classes coincide with the escape classes *)
  check "[[:digit:]] = \\d" true (R.equal (re "[[:digit:]]") (re "\\d"));
  check "[[:word:]] = \\w" true (R.equal (re "[[:word:]]") (re "\\w"));
  check "[[:^space:]] = \\S" true (R.equal (re "[[:^space:]]") (re "\\S"));
  check "alnum union" true
    (R.equal (re "[[:alpha:][:digit:]]") (re "[[:alnum:]]"));
  (* class algebra: difference and intersection *)
  check "difference" true
    (R.equal (re "[a-z--[aeiou]]") (re "[bcdfghjklmnpqrstvwxyz]"));
  check "intersection" true
    (R.equal (re "[[:alnum:]&&[^0-9]]") (re "[[:alpha:]]"));
  check "nested algebra" true
    (R.equal (re "[0-9--[4-6--[5]]]") (re "[01235789]"));
  (* both parsers share the lexical layer *)
  check "loc parser posix" true
    (L.equal (lre "[[:digit:]]+$") (L.concat (L.of_plain (re "\\d+")) L.end_));
  (* '[' not followed by ':' stays a literal class member, as before *)
  check "literal bracket" true (R.equal (re "[[a]") (re "[a[]"));
  (* lone '&' / '-' stay ordinary members *)
  check "lone amp" true (R.equal (re "[a&]") (re "[&a]"));
  check "trailing dash" true (R.equal (re "[a-]") (re "[\\-a]"))

(* -- parser: error offsets for multi-byte constructs ---------------------- *)

let err_pos p s =
  match p s with
  | Ok _ -> Alcotest.fail (Printf.sprintf "%S unexpectedly parsed" s)
  | Error (pos, _) -> pos

let test_parse_error_offsets () =
  (* unknown POSIX class: the opening '[' of '[:', not end-of-input *)
  check_int "[[:bogus:]]" 1 (err_pos P.parse "[[:bogus:]]");
  check_int "prefixed bogus" 3 (err_pos P.parse "ab[[:bogus:]]");
  check_int "unterminated posix" 1 (err_pos P.parse "[[:alpha]");
  check_int "loc parser same" 3 (err_pos LP.parse "ab[[:bogus:]]");
  (* unknown/truncated group kinds: the opening '(' *)
  check_int "(?<" 0 (err_pos LP.parse "(?<");
  check_int "a(?<x)" 1 (err_pos LP.parse "a(?<x)");
  check_int "(?#...)" 0 (err_pos LP.parse "(?#comment)");
  check_int "unterminated look" 2 (err_pos LP.parse "ab(?=cd");
  (* nested zero-width in a lookaround body: the construct's '(' *)
  check_int "nested anchor in body" 1 (err_pos LP.parse "a(?=b$)");
  (* oversized counter over a zero-width-containing term: the '{' *)
  check_int "zw loop bound" 5 (err_pos LP.parse "(?=a){99}")

(* -- engine vs the brute-force all-splits oracle -------------------------- *)

let loc_patterns =
  [ "^abc$"; "^a+"; "a$"; "^"; "$"; "^$"; "a^b"; "(^|a)b*$"
  ; "(?=ab)a."; "(?!ab)a."; "(?<=ab)c"; "(?<!ab)c"; ".*(?<=ab)"
  ; "(?=a+b)a*b?"; "(?!.*b).*"; "\\w+(?<=\\d)"; "(?<!\\d)ab"
  ; "(^a|b$){1,2}"; "~(^a)&.?.?"; "((?=a).)*"; "^\\d{2}(?=[a-z])[a-z]+$"
  ; "^a(?<=a)b"; "x$(?<=x)"; "(?<=a)(?=b).?" ]

let loc_inputs =
  [ ""; "a"; "b"; "ab"; "ba"; "abc"; "aab"; "abab"; "7ab"; "ab7"; "aaa"
  ; "bbb"; "cab"; "abcab"; "12ab"; "a\xc3\xa9b"; "\xc3\xa9" ]

let test_engine_vs_oracle () =
  List.iter
    (fun pat ->
      let t = lre pat in
      let eng = LEng.create ~mode:Byteclass.Utf8 t in
      List.iter
        (fun s ->
          let cps, bnd = segment s in
          let o = LRef.make t cps in
          let res = LEng.run eng s in
          check
            (Printf.sprintf "full %s %S" pat s)
            (LRef.full o) res.LEng.full;
          Alcotest.(check (option int))
            (Printf.sprintf "found %s %S" pat s)
            (Option.map (fun e -> bnd.(e)) (LRef.earliest_end o))
            res.LEng.found_end)
        loc_inputs)
    loc_patterns

(* -- targeted semantic spot checks ---------------------------------------- *)

let full pat s =
  (LEng.run (LEng.create (lre pat)) s).LEng.full

let test_semantics () =
  check "^abc$ abc" true (full "^abc$" "abc");
  check "anchored no slack" false (full "^abc$" "xabc");
  check "a^b empty" false (full "a^b" "ab");
  check "dollar mid" false (full "a$b" "ab");
  check "lookahead guard" true (full "(?=\\d)\\w+" "7ab");
  check "lookahead guard neg" false (full "(?=\\d)\\w+" "ab7");
  check "lookbehind close" true (full "\\w+(?<=\\d)" "ab7");
  check "lookbehind close neg" false (full "\\w+(?<=\\d)" "7ab");
  check "neg lookahead" true (full "(?!.*b).*" "aaa");
  check "neg lookahead hit" false (full "(?!.*b).*" "aab");
  check "password idiom" true
    (full "^(?=.*\\d)(?=.*[a-z]).{4,}$" "ab1c");
  check "password idiom miss" false
    (full "^(?=.*\\d)(?=.*[a-z]).{4,}$" "abcd");
  (* boolean ops over located terms *)
  check "compl of anchored" true (full "~(^a)&.?.?" "b");
  check "compl of anchored neg" false (full "~(^a)&.?.?" "a");
  (* counted repetition over zero-width-containing bodies expands *)
  check "zw loop" true (full "(^|a){2}b" "ab");
  check "zw loop eps uses anchor" true (full "(^|a){2}b" "b");
  check "star of guarded dot" true (full "((?=[a-z]).)*" "abc");
  check "star of guarded dot miss" false (full "((?=[a-z]).)*" "ab7")

(* -- anchor elimination (lower) vs word enumeration ----------------------- *)

let enum_words alphabet max_len =
  let rec go n =
    if n = 0 then [ [] ]
    else
      let shorter = go (n - 1) in
      List.concat_map
        (fun w -> List.map (fun c -> Char.code c :: w) alphabet)
        (List.filter (fun w -> List.length w = n - 1) shorter)
      @ shorter
  in
  go max_len

let test_lower () =
  let words = enum_words [ 'a'; 'b' ] 4 in
  List.iter
    (fun pat ->
      let t = lre pat in
      match L.lower t with
      | None -> Alcotest.fail (Printf.sprintf "lower refused %s" pat)
      | Some p ->
        List.iter
          (fun w ->
            let cps = Array.of_list w in
            let o = LRef.make t cps in
            check
              (Printf.sprintf "lower %s on %s" pat
                 (String.concat "" (List.map (fun c -> String.make 1 (Char.chr c)) w)))
              (LRef.full o) (Ref.matches p w))
          words)
    [ "^a*"; "a$"; "^a*b$"; "(^|a)b*"; "a^b"; "(^a|b$){1,2}"; "~(^a)&.*"
    ; "^$"; "(a|$)(b|^)?"; "b*($|a)" ];
  (* lookarounds do not lower *)
  check "look refuses" true (L.lower (lre "(?=a)b") = None);
  (* plain terms lower to themselves modulo nonempty-splitting *)
  (match L.lower (lre "ab*") with
  | Some p ->
    List.iter
      (fun w -> check "plain lower" (Ref.matches (re "ab*") w) (Ref.matches p w))
      (List.map (fun w -> w) words)
  | None -> Alcotest.fail "plain lower refused")

(* -- streaming: anchors at every chunk split ------------------------------ *)

let stream_corpus =
  [ ""; "a"; "ab"; "abc"; "aabc"; "ab\xc3\xa9"; "\xc3\xa9ab"; "a\xe4\xb8\xadb"
  ; "ab\xe4\xb8" (* truncated at EOF *); "\x80ab" (* stray continuation *) ]

let test_stream_all_splits () =
  List.iter
    (fun pat ->
      let t = lre pat in
      let eng = LEng.create ~mode:Byteclass.Utf8 t in
      List.iter
        (fun s ->
          let n = String.length s in
          let batch = LEng.run eng s in
          for k1 = 0 to n do
            for k2 = k1 to n do
              let st = LEng.Stream.create eng in
              if k1 > 0 then LEng.Stream.feed ~off:0 ~len:k1 st s;
              if k2 - k1 > 0 then LEng.Stream.feed ~off:k1 ~len:(k2 - k1) st s;
              if n - k2 > 0 then LEng.Stream.feed ~off:k2 ~len:(n - k2) st s;
              let res = LEng.Stream.finish st in
              check
                (Printf.sprintf "full %s %S @%d,%d" pat s k1 k2)
                batch.LEng.full res.LEng.full;
              Alcotest.(check (option int))
                (Printf.sprintf "found %s %S @%d,%d" pat s k1 k2)
                batch.LEng.found_end res.LEng.found_end;
              check_int
                (Printf.sprintf "bytes %s %S @%d,%d" pat s k1 k2)
                n res.LEng.bytes
            done
          done)
        stream_corpus)
    [ "^a"; "a$"; "^.*$"; "^$"; "$"; "^"; "(?<=ab)."; "(?<!a)b"; "a+$"
    ; "^ab$|b" ];
  (* lookaheads are rejected up front, not silently mis-streamed *)
  let eng = LEng.create (lre "(?=a)b") in
  check "lookahead rejected" true
    (match LEng.Stream.create eng with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* -- lints ---------------------------------------------------------------- *)

let rules pat =
  List.map (fun f -> f.LA.rule) (LA.analyze (lre pat)).LA.findings

let test_lints () =
  let has r pat = check (pat ^ " has " ^ r) true (List.mem r (rules pat)) in
  let clean pat = check (pat ^ " clean") true (rules pat = []) in
  (* trivially-true positive lookaround (nullable body) *)
  has "SBD301" "(?=a*)b";
  has "SBD301" "(?<=a?)b";
  (* impossible negative lookaround, incl. the ⊤* contradiction *)
  has "SBD302" "(?!a*)b";
  has "SBD302" "(?!(a|b*)c?)x";
  (* behind-variant: a negative lookbehind with a nullable body is just
     as unsatisfiable — the empty span preceding the position always
     witnesses the body *)
  has "SBD302" "(?<!a*)b";
  has "SBD302" "(?<!a?)b";
  check "non-nullable lookbehind body fine" false
    (List.mem "SBD302" (rules "(?<!a)b"));
  (* lookahead in tail position *)
  has "SBD303" "a(?=b)";
  has "SBD303" "a((?=b)|c)";
  has "SBD303" "a(x(?=b))*";
  check "guarded head is fine" false (List.mem "SBD303" (rules "(?=b)a"));
  (* anchors that empty the language *)
  has "SBD304" "a^b";
  has "SBD304" "$a";
  has "SBD304" "a$b+";
  check "usable anchors are fine" false (List.mem "SBD304" (rules "^a|b$"));
  check "eps-tolerant anchors fine" false (List.mem "SBD304" (rules "a$b*"));
  (* emptiness only the abstract domains see: the lowered pattern is
     not syntactically empty, but its length sets ([3,3] vs [5,5]) or
     required/possible character sets ({a,b} vs {c,d}) are disjoint *)
  has "SBD304" "^a{3}$&^a{5}$";
  has "SBD304" "^ab$&^cd$";
  check "feasible lengths fine" false
    (List.mem "SBD304" (rules "^a{3,5}$&^a{4}$"));
  clean "^a+b$";
  clean "(?<=\\d)ab";
  (* fragment classification *)
  let frag pat = (LA.analyze (lre pat)).LA.fragment in
  Alcotest.(check string) "plain" "RE" (frag "a(b|c)*");
  Alcotest.(check string) "bool" "B(RE)" (frag "a&~b");
  Alcotest.(check string) "loc re" "Loc(RE)" (frag "^a(b|c)*$");
  Alcotest.(check string) "loc look" "Loc(RE)" (frag "(?=ab)c");
  Alcotest.(check string) "loc bool" "Loc(B(RE))" (frag "^(a&~b)");
  Alcotest.(check string) "loc body counts" "Loc(B(RE))" (frag "(?=a&b)c");
  (* report fields *)
  let r = LA.analyze (lre "^a(?=b)c$") in
  check_int "n_anchors" 2 r.LA.n_anchors;
  check_int "n_looks" 1 r.LA.n_looks;
  check "zero_width" true r.LA.zero_width;
  check "lowered refused (look)" true (r.LA.lowered = None);
  let r2 = LA.analyze (lre "^ab$") in
  check "lowered present" true (r2.LA.lowered <> None)

(* -- service worker: extended match/analyze ------------------------------- *)

let test_worker () =
  let module W = (val Sbd_service.Worker.create ()) in
  (* located pattern routes to the located engine *)
  (match W.match_input ~pattern:"^a+$" ~input:"aaa" () with
  | Ok (Sbd_service.Protocol.Matched { full; span; found_end }, stats) ->
    check "worker loc full" true full;
    check "worker loc span absent" true (span = None);
    check "worker loc found_end" true (found_end = Some 3);
    check "worker loc found_end stat" true
      (List.assoc_opt "locmatch.found_end" stats = Some 3.0)
  | Ok _ -> Alcotest.fail "unexpected verdict"
  | Error msg -> Alcotest.fail msg);
  (* plain pattern keeps the classical engine (span present) *)
  (match W.match_input ~pattern:"a+" ~input:"xaay" () with
  | Ok (Sbd_service.Protocol.Matched { full; span; found_end }, _) ->
    check "worker plain full" false full;
    check "worker plain span" true (span = Some (1, 2));
    check "worker plain found_end absent" true (found_end = None)
  | Ok _ -> Alcotest.fail "unexpected verdict"
  | Error msg -> Alcotest.fail msg);
  (* lookaround match *)
  (match W.match_input ~pattern:"(?<=a)b" ~input:"ab" () with
  | Ok (Sbd_service.Protocol.Matched { full; found_end; _ }, stats) ->
    check "worker look full" false full;
    check "worker look found_end" true (found_end = Some 2);
    check "worker look found" true
      (List.assoc_opt "locmatch.found_end" stats = Some 2.0)
  | Ok _ -> Alcotest.fail "unexpected verdict"
  | Error msg -> Alcotest.fail msg);
  (* extended analyze returns the located report shape *)
  (match W.analyze_pattern "(?!a*)b" with
  | Ok (Sbd_obs.Obs.Json.Obj fields) ->
    check "worker loc analyze" true
      (List.assoc_opt "zero_width" fields = Some (Sbd_obs.Obs.Json.Bool true))
  | Ok _ -> Alcotest.fail "unexpected analyze shape"
  | Error msg -> Alcotest.fail msg);
  (* plain analyze unchanged *)
  match W.analyze_pattern "a*b" with
  | Ok (Sbd_obs.Obs.Json.Obj fields) ->
    check "worker plain analyze" true
      (List.mem_assoc "metrics" fields)
  | Ok _ -> Alcotest.fail "unexpected analyze shape"
  | Error msg -> Alcotest.fail msg

let suite =
  ( "locregex",
    [ Alcotest.test_case "parse syntax" `Quick test_parse_syntax
    ; Alcotest.test_case "posix classes" `Quick test_parse_posix
    ; Alcotest.test_case "error offsets" `Quick test_parse_error_offsets
    ; Alcotest.test_case "engine vs oracle" `Quick test_engine_vs_oracle
    ; Alcotest.test_case "semantics" `Quick test_semantics
    ; Alcotest.test_case "lower" `Quick test_lower
    ; Alcotest.test_case "stream all splits" `Quick test_stream_all_splits
    ; Alcotest.test_case "lints" `Quick test_lints
    ; Alcotest.test_case "worker extended ops" `Quick test_worker
    ] )
