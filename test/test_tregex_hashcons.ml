(* Tests for the hash-consing layer of transition regexes: interned
   [equal]/[hash] agree with the structural oracle, rebuilding a
   structure hits the intern table (physical equality), the
   normalizations are stable under re-interning, DNF disjuncts are
   deduplicated by id, and derivative-based verdicts still agree with
   the reference matcher.  Also covers the running-max semantics of the
   [deriv.dnf.size_max] counter. *)

module A = Sbd_alphabet.Bdd
module R = Sbd_regex.Regex.Make (A)
module P = Sbd_regex.Parser.Make (R)
module D = Sbd_core.Deriv.Make (R)
module Tr = D.Tr
module Ref = Sbd_classic.Refmatch.Make (R)
module Obs = Sbd_obs.Obs

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let ca = Char.code 'a'
let cb = Char.code 'b'
let c0 = Char.code '0'
let c1 = Char.code '1'
let sample_alphabet = [ ca; cb; c0; c1; Char.code 'x' ]

(* -- generators ------------------------------------------------------- *)

let gen_pred : A.pred QCheck2.Gen.t =
  QCheck2.Gen.oneofl
    [ A.of_ranges [ (ca, ca) ]
    ; A.of_ranges [ (cb, cb) ]
    ; A.of_ranges [ (c0, c1) ]
    ; A.of_ranges [ (ca, cb); (c1, c1) ]
    ; A.neg (A.of_ranges [ (cb, cb) ])
    ; A.top
    ]

let gen_regex : R.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let leaf =
    frequency
      [ (6, map R.pred gen_pred); (1, pure R.eps); (1, pure R.empty) ]
  in
  fix
    (fun self n ->
      if n <= 1 then leaf
      else
        let sub = self (n / 2) in
        frequency
          [ (4, map2 R.concat sub sub)
          ; (3, map2 R.alt sub sub)
          ; (2, map R.star sub)
          ; (2, map2 R.inter sub sub)
          ; (1, map R.compl sub)
          ; (2, leaf)
          ])
    6

(* A transition regex as a first-order shape, so one random shape can be
   instantiated twice through the smart constructors and the two copies
   compared: the intern table must map both builds to one node. *)
type shape =
  | SLeaf of R.t
  | SIte of A.pred * shape * shape
  | SUnion of shape * shape
  | SInter of shape * shape
  | SCompl of shape

let rec build = function
  | SLeaf r -> Tr.leaf r
  | SIte (p, a, b) -> Tr.ite p (build a) (build b)
  | SUnion (a, b) -> Tr.union (build a) (build b)
  | SInter (a, b) -> Tr.inter (build a) (build b)
  | SCompl a -> Tr.compl (build a)

(* The same shape through the raw (unsimplified) constructors: exercises
   intern paths the smart constructors would rewrite away. *)
let rec build_raw = function
  | SLeaf r -> Tr.leaf r
  | SIte (p, a, b) -> Tr.raw_ite p (build_raw a) (build_raw b)
  | SUnion (a, b) -> Tr.raw_union (build_raw a) (build_raw b)
  | SInter (a, b) -> Tr.raw_inter (build_raw a) (build_raw b)
  | SCompl a -> Tr.raw_compl (build_raw a)

let gen_shape : shape QCheck2.Gen.t =
  let open QCheck2.Gen in
  fix
    (fun self n ->
      if n <= 1 then map (fun r -> SLeaf r) gen_regex
      else
        let sub = self (n / 2) in
        frequency
          [ (2, map (fun r -> SLeaf r) gen_regex)
          ; (3, map3 (fun p a b -> SIte (p, a, b)) gen_pred sub sub)
          ; (3, map2 (fun a b -> SUnion (a, b)) sub sub)
          ; (2, map2 (fun a b -> SInter (a, b)) sub sub)
          ; (1, map (fun a -> SCompl a) sub)
          ])
    5

let rec pp_shape = function
  | SLeaf r -> Printf.sprintf "leaf(%s)" (R.to_string r)
  | SIte (_, a, b) -> Printf.sprintf "ite(_,%s,%s)" (pp_shape a) (pp_shape b)
  | SUnion (a, b) -> Printf.sprintf "(%s|%s)" (pp_shape a) (pp_shape b)
  | SInter (a, b) -> Printf.sprintf "(%s&%s)" (pp_shape a) (pp_shape b)
  | SCompl a -> Printf.sprintf "~%s" (pp_shape a)

let count = 200
let prop name gen print f = QCheck2.Test.make ~name ~count ~print gen f

(* -- interning invariants --------------------------------------------- *)

(* Two independent builds of one shape intern to the same node: physical
   equality, equal ids, equal hashes. *)
let t_intern_identity =
  prop "same shape interns to one node" gen_shape pp_shape (fun s ->
      let a = build s and b = build s in
      let ra = build_raw s and rb = build_raw s in
      a == b && Tr.id a = Tr.id b && Tr.hash a = Tr.hash b
      && ra == rb
      && Tr.equal_structural a b
      && Tr.equal_structural ra rb)

(* [equal] (physical) coincides with the structural oracle on arbitrary
   pairs, and equal nodes hash equally. *)
let t_equal_agrees_with_structural =
  prop "equal = equal_structural; equal => same hash"
    QCheck2.Gen.(pair gen_shape gen_shape)
    (fun (s1, s2) -> pp_shape s1 ^ " vs " ^ pp_shape s2)
    (fun (s1, s2) ->
      let a = build_raw s1 and b = build_raw s2 in
      Tr.equal a b = Tr.equal_structural a b
      && ((not (Tr.equal a b)) || Tr.hash a = Tr.hash b))

(* -- normalizations under interning ----------------------------------- *)

(* dnf/nnf/neg are deterministic functions of the interned node: a
   rebuilt argument (same id) yields the physically same result, and
   [nnf]/[dnf] are idempotent through the memo tables.  ([neg] is {e
   semantically} involutive -- Lemma 4.2 -- but not structurally so on
   raw unsimplified terms, since it rebuilds through the smart
   constructors; the semantic property lives in test_props.) *)
let t_normalizations_stable =
  prop "dnf/nnf/neg stable across rebuilds" gen_shape pp_shape (fun s ->
      let a = build_raw s and b = build_raw s in
      Tr.dnf a == Tr.dnf b
      && Tr.nnf a == Tr.nnf b
      && Tr.neg a == Tr.neg b
      && Tr.nnf (Tr.nnf a) == Tr.nnf a
      && Tr.dnf (Tr.dnf a) == Tr.dnf a)

(* Clearing the memo tables must not change any result: the intern table
   survives, so recomputation lands on the same nodes. *)
let t_clear_memos_coherent =
  prop "results unchanged after clear_memos" gen_shape pp_shape (fun s ->
      let a = build_raw s in
      let d1 = Tr.dnf a and n1 = Tr.nnf a and g1 = Tr.neg a in
      Tr.clear_memos ();
      Tr.dnf a == d1 && Tr.nnf a == n1 && Tr.neg a == g1)

(* DNF disjuncts are deduplicated: pairwise distinct ids at the top
   level, even when the input repeats whole disjuncts. *)
let t_dnf_disjuncts_distinct =
  prop "dnf disjuncts pairwise distinct by id" gen_shape pp_shape (fun s ->
      let a = build_raw s in
      (* Repeat the whole term: the union collapses either in the smart
         constructor or in the DNF dedup, never in the output. *)
      let doubled = Tr.raw_union a a in
      let distinct t =
        let ds = Tr.disjuncts (Tr.dnf t) in
        let ids = List.map Tr.id ds in
        List.length ids = List.length (List.sort_uniq compare ids)
      in
      distinct a && distinct doubled
      && Tr.dnf doubled == Tr.dnf a)

(* Semantics of the normalizations, via [apply] at sample characters:
   hash-consing and memoization must not change denotations. *)
let t_normalizations_semantics =
  prop "dnf/nnf preserve apply semantics"
    QCheck2.Gen.(pair gen_shape (oneofl sample_alphabet))
    (fun (s, c) -> Printf.sprintf "%s at %c" (pp_shape s) (Char.chr c))
    (fun (s, c) ->
      let a = build_raw s in
      let lang r = Ref.matches r in
      let words =
        [ []; [ ca ]; [ cb ]; [ c0; c1 ]; [ ca; cb; ca ] ]
      in
      let same r1 r2 = List.for_all (fun w -> lang r1 w = lang r2 w) words in
      same (Tr.apply a c) (Tr.apply (Tr.dnf a) c)
      && same (Tr.apply a c) (Tr.apply (Tr.nnf a) c))

(* -- differential matching ------------------------------------------- *)

let gen_word : int list QCheck2.Gen.t =
  QCheck2.Gen.(list_size (int_bound 5) (oneofl sample_alphabet))

let t_deriv_vs_refmatch =
  prop "derivative verdicts = Refmatch"
    QCheck2.Gen.(pair gen_regex gen_word)
    (fun (r, w) ->
      Printf.sprintf "%s on [%s]" (R.to_string r)
        (String.concat ";" (List.map string_of_int w)))
    (fun (r, w) -> D.matches r w = Ref.matches r w)

(* -- counters --------------------------------------------------------- *)

(* [Counter.max_to] keeps a running maximum -- it must never decrease
   when later observations are smaller. *)
let test_counter_max_to () =
  let c = Obs.Counter.make "test.hashcons.max" in
  Obs.Counter.max_to c 5;
  Obs.Counter.max_to c 3;
  check_int "max(5,3) = 5" 5 (Obs.Counter.value c);
  Obs.Counter.max_to c 7;
  Obs.Counter.max_to c 1;
  check_int "max stays 7" 7 (Obs.Counter.value c)

(* [deriv.dnf.size_max] through the real pipeline: deriving a small
   regex after a large one must not lower the reported maximum. *)
let test_dnf_size_max_monotone () =
  let was = Obs.enabled () in
  Obs.set_enabled true;
  let big = P.parse_exn "(a|b)*abb&~(.*bb.*)|(0|1)*01" in
  let small = P.parse_exn "a" in
  ignore (D.delta_dnf big);
  let v1 =
    match List.assoc_opt "deriv.dnf.size_max" (Obs.snapshot ()) with
    | Some v -> v
    | None -> Alcotest.fail "deriv.dnf.size_max not in snapshot"
  in
  ignore (D.delta_dnf small);
  let v2 =
    match List.assoc_opt "deriv.dnf.size_max" (Obs.snapshot ()) with
    | Some v -> v
    | None -> Alcotest.fail "deriv.dnf.size_max not in snapshot"
  in
  Obs.set_enabled was;
  check "size_max is monotone" true (v2 >= v1 && v1 >= 1.0)

(* Interning sanity on a couple of fixed terms, for readable failures. *)
let test_intern_spot () =
  let p = A.of_ranges [ (ca, ca) ] in
  let t1 = Tr.ite p (Tr.leaf R.eps) Tr.bot in
  let t2 = Tr.ite p (Tr.leaf R.eps) Tr.bot in
  check "spot: physically equal" true (t1 == t2);
  check_int "spot: same id" (Tr.id t1) (Tr.id t2);
  let u1 = Tr.union t1 Tr.bot in
  check "spot: union unit" true (u1 == t1);
  let n = Tr.raw_compl t1 in
  check "spot: raw_compl distinct" false (Tr.equal n t1);
  check "spot: structural oracle agrees" true
    (Tr.equal_structural n (Tr.raw_compl t2))

let suite =
  ( "tregex-hashcons",
    [ Alcotest.test_case "intern spot checks" `Quick test_intern_spot
    ; Alcotest.test_case "Counter.max_to running max" `Quick
        test_counter_max_to
    ; Alcotest.test_case "dnf size_max monotone" `Quick
        test_dnf_size_max_monotone
    ]
    @ List.map QCheck_alcotest.to_alcotest
        [ t_intern_identity
        ; t_equal_agrees_with_structural
        ; t_normalizations_stable
        ; t_clear_memos_coherent
        ; t_dnf_disjuncts_distinct
        ; t_normalizations_semantics
        ; t_deriv_vs_refmatch
        ] )
