(* Tests for the concurrent solver service (lib/service, DESIGN.md §9,
   §17): wire-protocol parsing (including batch envelopes), a full
   session round-trip over pipes (including malformed input,
   per-request deadlines and batch robustness), work-stealing scheduler
   backpressure and drain, sharded-LRU accounting under multi-domain
   churn, and pool-vs-sequential agreement with reference-matcher
   witness validation. *)

module Obs = Sbd_obs.Obs
module J = Obs.Json
module Jsonin = Sbd_service.Jsonin
module Protocol = Sbd_service.Protocol
module Sched = Sbd_service.Sched
module Lru = Sbd_service.Lru
module Worker = Sbd_service.Worker
module Pool = Sbd_service.Pool
module Server = Sbd_service.Server

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* -- JSON reader --------------------------------------------------------- *)

let test_jsonin () =
  (match Jsonin.parse {|{"a": [1, -2.5, true, null], "s": "x\né"}|} with
  | Error msg -> Alcotest.fail ("parse failed: " ^ msg)
  | Ok json ->
    (match Jsonin.member "a" json with
    | Some (J.Arr [ J.Int 1; J.Float f; J.Bool true; J.Null ]) ->
      check "float element" true (Float.abs (f +. 2.5) < 1e-9)
    | _ -> Alcotest.fail "array shape");
    check_str "escapes decoded" "x\n\xc3\xa9"
      (Option.get (Jsonin.str_member "s" json)));
  (match Jsonin.parse {|{"broken": }|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted malformed JSON");
  match Jsonin.parse {|{"a":1} trailing|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted trailing garbage"

(* -- request parsing ----------------------------------------------------- *)

let test_parse_request () =
  (match
     Protocol.parse_request
       {|{"id": 7, "op": "solve", "re": "a|b", "deadline_s": 0.5, "budget": 100}|}
   with
  | Ok { id = J.Int 7; payload = Protocol.Solve_re "a|b"; deadline_s = Some d;
         budget = Some 100; _ } ->
    check "deadline" true (Float.abs (d -. 0.5) < 1e-9)
  | Ok _ -> Alcotest.fail "wrong request shape"
  | Error (_, msg) -> Alcotest.fail msg);
  (match Protocol.parse_request "not json at all" with
  | Error (J.Null, msg) ->
    check "malformed tagged" true
      (String.length msg >= 9 && String.sub msg 0 9 = "malformed")
  | _ -> Alcotest.fail "malformed line must fail without an id");
  (* the id survives even when the request itself is bad, so the error
     response can be correlated *)
  (match Protocol.parse_request {|{"id": "q1", "op": "frobnicate"}|} with
  | Error (J.Str "q1", _) -> ()
  | _ -> Alcotest.fail "id not preserved on unknown op");
  match Protocol.parse_request {|{"id": 1, "op": "assert"}|} with
  | Error (J.Int 1, _) -> ()
  | _ -> Alcotest.fail "assert without re must fail"

(* -- scheduler backpressure and drain ------------------------------------ *)

let test_sched_backpressure () =
  (* one worker: a single deque, exactly the old shared-queue contract *)
  let q = Sched.create ~workers:1 ~cap:2 in
  check "push 1" true (Sched.try_push q 1);
  check "push 2" true (Sched.try_push q 2);
  check "push beyond cap refused" false (Sched.try_push q 3);
  check_int "length" 2 (Sched.length q);
  (match Sched.pop q ~me:0 with
  | Some 1 -> ()
  | _ -> Alcotest.fail "FIFO order");
  check "slot freed" true (Sched.try_push q 4);
  Sched.close q;
  check "push after close refused" false (Sched.try_push q 5);
  check "drains after close" true (Sched.pop q ~me:0 = Some 2);
  check "drains after close" true (Sched.pop q ~me:0 = Some 4);
  check "None once drained" true (Sched.pop q ~me:0 = None)

let test_sched_spill () =
  (* a full affinity target spills to the least-loaded deque instead of
     shedding, and the spill is counted *)
  let q = Sched.create ~workers:2 ~cap:4 in
  (* per-deque cap is 2; all pushes target deque 0 *)
  check "push 1" true (Sched.try_push ~affinity:0 q 1);
  check "push 2" true (Sched.try_push ~affinity:0 q 2);
  check "spilled to deque 1" true (Sched.try_push ~affinity:0 q 3);
  check_int "one spill" 1 (Sched.spills q);
  check "spill target fills too" true (Sched.try_push ~affinity:0 q 4);
  check "both deques full" false (Sched.try_push ~affinity:0 q 5);
  check_int "length" 4 (Sched.length q);
  Sched.close q

(* Multi-domain churn: every item routed to deque 0, consumed only by
   workers 1..3 — each delivery is necessarily a steal.  Checks no item
   is lost or duplicated and that close lets consumers drain cleanly. *)
let test_sched_steal_stress () =
  let n = 1_000 in
  let workers = 4 in
  let q = Sched.create ~workers ~cap:64 in
  let got = Array.make workers [] in
  let consumers =
    List.init (workers - 1) (fun k ->
        let me = k + 1 in
        Domain.spawn (fun () ->
            let rec go () =
              match Sched.pop q ~me with
              | Some x ->
                got.(me) <- x :: got.(me);
                go ()
              | None -> ()
            in
            go ()))
  in
  for i = 0 to n - 1 do
    check "push_wait accepted" true (Sched.push_wait ~affinity:0 q i)
  done;
  Sched.close q;
  List.iter Domain.join consumers;
  check "push after close refused" false (Sched.push_wait ~affinity:0 q n);
  let all = Array.to_list got |> List.concat |> List.sort compare in
  check_int "no lost or duplicated items" n (List.length all);
  check "exactly the pushed items" true (all = List.init n Fun.id);
  check_int "every delivery was a steal" n (Sched.steals q);
  check_int "drained empty" 0 (Sched.length q)

(* -- LRU accounting ------------------------------------------------------ *)

let test_lru () =
  let c : int Lru.t = Lru.create ~cap:2 () in
  check "cold miss" true (Lru.find c "a" = None);
  Lru.put c "a" 1;
  Lru.put c "b" 2;
  check "hit a" true (Lru.find c "a" = Some 1);
  (* "b" is now least recent: inserting "c" must evict it, not "a" *)
  Lru.put c "c" 3;
  check_int "size stays at cap" 2 (Lru.size c);
  check "a survived (recently used)" true (Lru.find c "a" = Some 1);
  check "b evicted" true (Lru.find c "b" = None);
  check "c present" true (Lru.find c "c" = Some 3);
  check_int "hits" 3 (Lru.hits c);
  check_int "misses" 2 (Lru.misses c);
  check_int "evictions" 1 (Lru.evictions c)

let test_lru_shards () =
  (* shard count rounds up to a power of two; cap splits across shards *)
  let c : int Lru.t = Lru.create ~shards:3 ~cap:16 () in
  check_int "rounded to power of two" 4 (Lru.num_shards c);
  check_int "per-shard cap" 4 (Lru.shard_cap c);
  for i = 0 to 63 do
    Lru.put c (string_of_int i) i
  done;
  check "size bounded by total cap" true (Lru.size c <= 16);
  List.iter
    (fun (size, _, _, _) -> check "shard within its cap" true (size <= 4))
    (Lru.shard_rows c);
  (* per-shard rows surface in stats *)
  let stats = Lru.stats c in
  check "per-shard gauges present" true
    (List.mem_assoc "service.cache.shard0.size" stats
    && List.mem_assoc "service.cache.shard3.hits" stats)

(* Multi-domain churn over the sharded cache: concurrent get/put/evict
   with per-shard invariants (size never exceeds the shard cap) and
   exact aggregate accounting (hits + misses = finds issued). *)
let test_lru_sharded_stress () =
  let c : int Lru.t = Lru.create ~shards:8 ~cap:64 () in
  let domains = 4 and ops = 5_000 and keyspace = 200 in
  let finds = Atomic.make 0 in
  let workers =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            let seed = ref ((d * 7919) + 1) in
            let rand m =
              seed := ((!seed * 1103515245) + 12345) land 0x3FFFFFFF;
              !seed mod m
            in
            for _ = 1 to ops do
              let key = string_of_int (rand keyspace) in
              if rand 3 = 0 then Lru.put c key (int_of_string key)
              else begin
                ignore (Atomic.fetch_and_add finds 1);
                match Lru.find c key with
                | Some v -> assert (v = int_of_string key)
                | None -> ()
              end
            done))
  in
  List.iter Domain.join workers;
  check "size bounded by total cap" true (Lru.size c <= 64);
  List.iter
    (fun (size, _, _, _) ->
      check "shard within its cap" true (size <= Lru.shard_cap c))
    (Lru.shard_rows c);
  check_int "exact hit+miss accounting" (Atomic.get finds)
    (Lru.hits c + Lru.misses c);
  check "hit rate in range" true
    (Lru.hit_rate c >= 0.0 && Lru.hit_rate c <= 1.0)

(* -- worker: canonical cache keys and witness checking -------------------- *)

let test_worker_keys () =
  let (module W) = Worker.create () in
  let key p =
    match W.cache_key p with
    | Ok k -> k
    | Error msg -> Alcotest.fail msg
  in
  check_str "commutative or" (key "a|b") (key "b|a");
  check_str "commutative and" (key "a&b&c") (key "c&a&b");
  check "distinct languages, distinct keys" true (key "a|b" <> key "a|c");
  (* keys are instantiation-independent: a second worker whose hash-cons
     ids differ (forced by interning extra regexes first) agrees *)
  let (module W2) = Worker.create () in
  (match W2.cache_key "zz*|q{3}" with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  (match W2.cache_key "b|a" with
  | Ok k -> check_str "cross-worker key" (key "a|b") k
  | Error msg -> Alcotest.fail msg);
  match W.cache_key "a|(" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "parse error must not produce a key"

let test_worker_witness () =
  let (module W) = Worker.create () in
  (match W.solve_pattern "a{2,3}&~(.*b.*)" with
  | Ok (Protocol.Sat { codepoints; _ }, _) ->
    check "witness valid (reference matcher)" true
      (W.check_witness "a{2,3}&~(.*b.*)" codepoints = Some true)
  | Ok _ -> Alcotest.fail "expected sat"
  | Error msg -> Alcotest.fail msg);
  match W.solve_pattern "a{2}&a{3}" with
  | Ok (Protocol.Unsat, _) -> ()
  | Ok _ -> Alcotest.fail "expected unsat"
  | Error msg -> Alcotest.fail msg

(* -- containment requests ------------------------------------------------ *)

let test_contain_op () =
  (* request parsing *)
  (match Protocol.parse_request {|{"id":1,"op":"subset","re":"a","re2":"a*"}|} with
  | Ok { Protocol.payload = Protocol.Subset_re { left = "a"; right = "a*" }; _ }
    -> ()
  | Ok _ -> Alcotest.fail "wrong subset payload"
  | Error (_, msg) -> Alcotest.fail msg);
  (match Protocol.parse_request {|{"op":"equiv","re":"a"}|} with
  | Error (_, msg) -> check "missing re2 reported" true (msg <> "")
  | Ok _ -> Alcotest.fail "equiv without re2 must be rejected");
  let (module W) = Worker.create () in
  (* verdicts through the worker: Unsat = proved, Sat = refuted *)
  (match W.contain_pattern ~equiv:false "(ab)*a" "a(ba)*" with
  | Ok (Protocol.Unsat, _) -> ()
  | Ok _ -> Alcotest.fail "expected proved"
  | Error msg -> Alcotest.fail msg);
  (match W.contain_pattern ~equiv:false "a{1,4}" "a{2,3}" with
  | Ok (Protocol.Sat { codepoints; _ }, _) ->
    (* the distinguishing word is in the left language, not the right *)
    check "witness in left" true
      (W.check_witness "a{1,4}" codepoints = Some true);
    check "witness not in right" true
      (W.check_witness "a{2,3}" codepoints = Some false)
  | Ok _ -> Alcotest.fail "expected refuted"
  | Error msg -> Alcotest.fail msg);
  (match W.contain_pattern ~equiv:true "(a|b)*" "(a*b*)*" with
  | Ok (Protocol.Unsat, _) -> ()
  | Ok _ -> Alcotest.fail "expected equiv proved"
  | Error msg -> Alcotest.fail msg);
  (* cache keys: equiv is order-canonical, subset is not *)
  let key ~equiv l r =
    match W.contain_cache_key ~equiv l r with
    | Ok k -> k
    | Error msg -> Alcotest.fail msg
  in
  check_str "equiv key order-canonical" (key ~equiv:true "a|b" "c*")
    (key ~equiv:true "c*" "b|a");
  check "subset key is ordered" true
    (key ~equiv:false "a" "a*" <> key ~equiv:false "a*" "a");
  check "subset and equiv keys distinct" true
    (key ~equiv:false "a" "a*" <> key ~equiv:true "a" "a*");
  match W.contain_cache_key ~equiv:false "a|(" "a" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "parse error must not produce a key"

(* -- match requests ------------------------------------------------------- *)

let test_parse_match_request () =
  (match
     Protocol.parse_request {|{"id": 3, "op": "match", "re": "ab*c", "input": "xxabc"}|}
   with
  | Ok { id = J.Int 3; payload = Protocol.Match_re { pattern = "ab*c"; input = "xxabc" }; _ }
    -> ()
  | Ok _ -> Alcotest.fail "wrong match request shape"
  | Error (_, msg) -> Alcotest.fail msg);
  (* input is mandatory *)
  match Protocol.parse_request {|{"id": 4, "op": "match", "re": "ab*c"}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "match without input accepted"

(* -- batch envelope parsing ----------------------------------------------- *)

let test_parse_batch () =
  (* a valid envelope preserves order and per-request parse errors *)
  (match
     Protocol.parse_request
       {|{"op":"batch","reqs":[{"id":1,"op":"solve","re":"a"},{"id":2,"op":"frobnicate"},{"id":3,"op":"assert","re":"b"}]}|}
   with
  | Ok { payload = Protocol.Batch [ Ok r1; Error (J.Int 2, _); Ok r3 ]; _ } ->
    check "first is solve" true (r1.Protocol.payload = Protocol.Solve_re "a");
    check "third is assert" true (r3.Protocol.payload = Protocol.Assert_re "b")
  | Ok _ -> Alcotest.fail "wrong batch shape"
  | Error (_, msg) -> Alcotest.fail msg);
  let must_fail label line =
    match Protocol.parse_request line with
    | Error (_, msg) -> check (label ^ " reported") true (msg <> "")
    | Ok _ -> Alcotest.fail (label ^ " accepted")
  in
  must_fail "missing reqs" {|{"op":"batch"}|};
  must_fail "reqs not an array" {|{"op":"batch","reqs":7}|};
  must_fail "empty batch" {|{"op":"batch","reqs":[]}|};
  must_fail "missing inner id"
    {|{"op":"batch","reqs":[{"op":"solve","re":"a"}]}|};
  must_fail "duplicate ids"
    {|{"op":"batch","reqs":[{"id":1,"op":"solve","re":"a"},{"id":1,"op":"solve","re":"b"}]}|};
  (* nested batches and shutdown degrade to per-request errors: the
     envelope stays valid and the other requests still run *)
  let per_item_error label line =
    match Protocol.parse_request line with
    | Ok { payload = Protocol.Batch [ Error (J.Int 1, msg); Ok _ ]; _ } ->
      check (label ^ " reported") true (msg <> "")
    | Ok _ -> Alcotest.fail (label ^ ": wrong shape")
    | Error (_, msg) -> Alcotest.fail (label ^ ": envelope rejected: " ^ msg)
  in
  per_item_error "nested batch"
    {|{"op":"batch","reqs":[{"id":1,"op":"batch","reqs":[]},{"id":2,"op":"solve","re":"a"}]}|};
  per_item_error "shutdown inside batch"
    {|{"op":"batch","reqs":[{"id":1,"op":"shutdown"},{"id":2,"op":"solve","re":"a"}]}|};
  (* an oversized envelope is refused with a structured error *)
  let big =
    String.concat ","
      (List.init
         (Protocol.max_batch + 1)
         (fun i -> Printf.sprintf {|{"id":%d,"op":"solve","re":"a"}|} i))
  in
  must_fail "oversized batch"
    (Printf.sprintf {|{"op":"batch","reqs":[%s]}|} big);
  (* exactly max_batch is fine *)
  let ok =
    String.concat ","
      (List.init Protocol.max_batch (fun i ->
           Printf.sprintf {|{"id":%d,"op":"solve","re":"a"}|} i))
  in
  match
    Protocol.parse_request (Printf.sprintf {|{"op":"batch","reqs":[%s]}|} ok)
  with
  | Ok { payload = Protocol.Batch reqs; _ } ->
    check_int "max_batch accepted" Protocol.max_batch (List.length reqs)
  | Ok _ -> Alcotest.fail "wrong max-batch shape"
  | Error (_, msg) -> Alcotest.fail msg

(* -- draining line reader ------------------------------------------------- *)

let test_lines_reader () =
  let path = Filename.temp_file "sbd_lines" ".txt" in
  let oc = open_out_bin path in
  output_string oc "one\ntwo\nthree";
  close_out oc;
  let ic = open_in_bin path in
  let t = Jsonin.Lines.create ic in
  (* the whole file arrives in one read: both complete lines at once *)
  (match Jsonin.Lines.read t with
  | Some [ "one"; "two" ] -> ()
  | Some _ -> Alcotest.fail "wrong first burst"
  | None -> Alcotest.fail "premature EOF");
  (* the unterminated tail is delivered once EOF is seen *)
  (match Jsonin.Lines.read t with
  | Some [ "three" ] -> ()
  | _ -> Alcotest.fail "missing final unterminated line");
  check "eof" true (Jsonin.Lines.read t = None);
  close_in ic;
  Sys.remove path

(* -- full session over pipes --------------------------------------------- *)

(* Run a server on its own thread, speaking the newline-delimited JSON
   protocol over two pipes, exactly as a socket client would see it. *)
let with_session cfg f =
  let req_r, req_w = Unix.pipe ~cloexec:true () in
  let resp_r, resp_w = Unix.pipe ~cloexec:true () in
  let t = Server.create cfg in
  let srv =
    Thread.create
      (fun () ->
        let ic = Unix.in_channel_of_descr req_r in
        let oc = Unix.out_channel_of_descr resp_w in
        ignore (Server.serve_channel t ic oc);
        Pool.shutdown t.Server.pool;
        close_out_noerr oc;
        close_in_noerr ic)
      ()
  in
  let out = Unix.out_channel_of_descr req_w in
  let inp = Unix.in_channel_of_descr resp_r in
  let send line =
    output_string out line;
    output_char out '\n';
    flush out
  in
  let recv () =
    match Jsonin.parse (input_line inp) with
    | Ok json -> json
    | Error msg -> Alcotest.fail ("bad response JSON: " ^ msg)
  in
  Fun.protect
    ~finally:(fun () ->
      close_out_noerr out;
      Thread.join srv;
      close_in_noerr inp)
    (fun () -> f ~send ~recv)

let small_cfg =
  {
    Server.default_config with
    workers = 2;
    queue_cap = 8;
    cache_cap = 64;
    default_budget = 20_000;
    default_deadline = Some 5.0;
  }

let status json = Jsonin.str_member "status" json

let test_session_roundtrip () =
  with_session small_cfg (fun ~send ~recv ->
      send {|{"id": 1, "op": "solve", "re": "ab*c"}|};
      let r = recv () in
      check "sat" true (status r = Some "sat");
      check "id echoed" true (Jsonin.member "id" r = Some (J.Int 1));
      check "witness present" true (Jsonin.str_member "witness" r <> None);
      send {|{"id": 2, "op": "solve", "re": "a{2}&a{3}"}|};
      check "unsat" true (status (recv ()) = Some "unsat");
      (* malformed line: structured error, session keeps working *)
      send "this is not JSON";
      let r = recv () in
      check "error field" true (Jsonin.str_member "error" r <> None);
      check "null id" true (Jsonin.member "id" r = Some J.Null);
      (* assert/check: the conjunction is decided at check time *)
      send {|{"id": 3, "op": "assert", "re": ".*a"}|};
      check "assert ok" true (status (recv ()) = Some "ok");
      send {|{"id": 4, "op": "assert", "re": "z.*"}|};
      check "assert ok" true (status (recv ()) = Some "ok");
      send {|{"id": 5, "op": "check"}|};
      let r = recv () in
      check "conjunction sat" true (status r = Some "sat");
      (match Jsonin.str_member "witness" r with
      | Some w ->
        check "witness starts with z" true (String.length w > 0 && w.[0] = 'z');
        check "witness ends with a" true (w.[String.length w - 1] = 'a')
      | None -> Alcotest.fail "no witness on check");
      (* cache: same canonical form, served from the shared LRU *)
      send {|{"id": 6, "op": "solve", "re": "b*a|c*ab"}|};
      ignore (recv ());
      send {|{"id": 7, "op": "solve", "re": "c*ab|b*a"}|};
      let r = recv () in
      check "cache hit on commuted query" true
        (Jsonin.bool_member "cached" r = Some true);
      (* match op: leftmost-earliest span over the engine *)
      send {|{"id": "m1", "op": "match", "re": "ab*c", "input": "xxabbbcyy"}|};
      let r = recv () in
      check "match ok" true (status r = Some "ok");
      check "matched" true (Jsonin.bool_member "matched" r = Some true);
      check "not a full match" true (Jsonin.bool_member "full" r = Some false);
      check "span [2,7)" true
        (Jsonin.member "span" r = Some (J.Arr [ J.Int 2; J.Int 7 ]));
      (* the input is decoded as UTF-8: é is a single '.' *)
      send {|{"id": "m2", "op": "match", "re": "h.llo", "input": "héllo", "stats": true}|};
      let r = recv () in
      check "utf8 full match" true (Jsonin.bool_member "full" r = Some true);
      check "match stats present" true (Jsonin.member "stats" r <> None);
      send {|{"id": 8, "op": "stats"}|};
      let r = recv () in
      check "stats ok" true (status r = Some "ok");
      (match Jsonin.member "stats" r with
      | Some (J.Obj rows) ->
        check "cache hit counted" true
          (List.exists
             (fun (k, v) -> k = "service.cache.hits" && v <> J.Int 0)
             rows)
      | _ -> Alcotest.fail "stats payload missing");
      send {|{"id": 9, "op": "shutdown"}|};
      let r = recv () in
      check "shutdown ok" true (status r = Some "ok");
      check "drained" true (Jsonin.bool_member "drained" r = Some true))

(* -- batch protocol over a live session ----------------------------------- *)

let test_batch_roundtrip () =
  with_session small_cfg (fun ~send ~recv ->
      (* mixed batch: solves, an assert (answered by the reader), and a
         bad pattern; responses are correlated by id, order free *)
      send
        {|{"op":"batch","reqs":[{"id":"b1","op":"solve","re":"ab*c"},{"id":"b2","op":"assert","re":".*a"},{"id":"b3","op":"solve","re":"a{2}&a{3}"},{"id":"b4","op":"solve","re":"a|("}]}|};
      let responses = List.init 4 (fun _ -> recv ()) in
      let by_id want =
        match
          List.find_opt
            (fun r -> Jsonin.member "id" r = Some (J.Str want))
            responses
        with
        | Some r -> r
        | None -> Alcotest.fail ("no response for id " ^ want)
      in
      check "b1 sat" true (status (by_id "b1") = Some "sat");
      check "b2 ok" true (status (by_id "b2") = Some "ok");
      check "b3 unsat" true (status (by_id "b3") = Some "unsat");
      check "b4 structured error" true
        (Jsonin.str_member "error" (by_id "b4") <> None);
      (* the asserted pattern took effect for the rest of the session *)
      send {|{"id": 5, "op": "check"}|};
      check "conjunction sat" true (status (recv ()) = Some "sat");
      (* repeats of a batched solve hit the shared cache *)
      send {|{"op":"batch","reqs":[{"id":"c1","op":"solve","re":"ab*c"}]}|};
      let r = recv () in
      check "batched repeat cached" true
        (Jsonin.bool_member "cached" r = Some true);
      send {|{"id": 6, "op": "shutdown"}|};
      ignore (recv ()))

let test_batch_robustness () =
  with_session small_cfg (fun ~send ~recv ->
      let expect_error label =
        let r = recv () in
        check (label ^ " is an error") true (Jsonin.str_member "error" r <> None);
        r
      in
      (* envelope violations: one structured error each, session alive *)
      send {|{"id": "e1", "op": "batch"}|};
      let r = expect_error "missing reqs" in
      check "envelope id echoed" true
        (Jsonin.member "id" r = Some (J.Str "e1"));
      send {|{"op": "batch", "reqs": []}|};
      ignore (expect_error "empty batch");
      send {|{"op": "batch", "reqs": 42}|};
      ignore (expect_error "non-array reqs");
      send
        {|{"op":"batch","reqs":[{"id":1,"op":"solve","re":"a"},{"id":1,"op":"solve","re":"b"}]}|};
      ignore (expect_error "duplicate ids");
      send {|{"op":"batch","reqs":[{"op":"solve","re":"a"}]}|};
      ignore (expect_error "missing inner id");
      (* oversized: max_batch + 1 requests *)
      send
        (Printf.sprintf {|{"op":"batch","reqs":[%s]}|}
           (String.concat ","
              (List.init
                 (Protocol.max_batch + 1)
                 (fun i -> Printf.sprintf {|{"id":%d,"op":"solve","re":"a"}|} i))));
      ignore (expect_error "oversized batch");
      (* after all that abuse the session still answers *)
      send {|{"id": "alive", "op": "solve", "re": "ab*c"}|};
      let r = recv () in
      check "session survived" true (status r = Some "sat");
      check "id correlated" true (Jsonin.member "id" r = Some (J.Str "alive"));
      send {|{"id": 0, "op": "shutdown"}|};
      ignore (recv ()))

(* An intersection of alternations that clean-DNF pruning cannot
   collapse (see test_obs.ml): the first transition computation builds
   8^8 meets, so only the deadline can stop it. *)
let blowup_pattern =
  let factor k =
    String.concat "|"
      (List.init 8 (fun i ->
           Printf.sprintf "a%c.*" (Char.chr (Char.code 'a' + k + i))))
  in
  String.concat "&" (List.init 8 (fun k -> "(" ^ factor k ^ ")"))

let test_deadline_isolation () =
  with_session small_cfg (fun ~send ~recv ->
      (* a deadline-doomed request and an easy one, in flight together *)
      send
        (Printf.sprintf {|{"id": "hard", "op": "solve", "re": %S, "deadline_s": 0.05}|}
           blowup_pattern);
      send {|{"id": "easy", "op": "solve", "re": "easy|trivial"}|};
      let r1 = recv () in
      let r2 = recv () in
      let by_id want =
        if Jsonin.member "id" r1 = Some (J.Str want) then r1
        else if Jsonin.member "id" r2 = Some (J.Str want) then r2
        else Alcotest.fail ("no response for id " ^ want)
      in
      let hard = by_id "hard" and easy = by_id "easy" in
      check "doomed request is unknown" true (status hard = Some "unknown");
      check_str "reason is deadline" "deadline"
        (Option.value (Jsonin.str_member "reason" hard) ~default:"<none>");
      check "easy request unaffected" true (status easy = Some "sat");
      send {|{"id": 0, "op": "shutdown"}|};
      ignore (recv ()))

(* -- analyze op ----------------------------------------------------------- *)

let test_analyze_op () =
  with_session small_cfg (fun ~send ~recv ->
      send {|{"id": 1, "op": "analyze", "re": "[a-m]+&[n-z]+"}|};
      let r = recv () in
      check "analyze ok" true (status r = Some "ok");
      (match Jsonin.member "analysis" r with
      | Some (J.Obj kvs) ->
        (* the report proves emptiness and carries the SBD201 finding *)
        (match List.assoc_opt "semantic" kvs with
        | Some (J.Obj sem) ->
          check "proved empty over the wire" true
            (List.assoc_opt "empty" sem = Some (J.Str "proved"))
        | _ -> Alcotest.fail "semantic object missing");
        (match List.assoc_opt "findings" kvs with
        | Some (J.Arr fs) ->
          check "SBD201 over the wire" true
            (List.exists
               (fun f ->
                 match f with
                 | J.Obj kv -> List.assoc_opt "rule" kv = Some (J.Str "SBD201")
                 | _ -> false)
               fs)
        | _ -> Alcotest.fail "findings array missing");
        check "hints present" true (List.assoc_opt "hints" kvs <> None)
      | _ -> Alcotest.fail "analysis payload missing");
      (* a pattern that fails to parse turns into a structured error *)
      send {|{"id": 2, "op": "analyze", "re": "ab["}|};
      let r = recv () in
      check "bad pattern is an error" true (Jsonin.str_member "error" r <> None);
      (* missing "re" is rejected at the protocol layer *)
      send {|{"id": 3, "op": "analyze"}|};
      let r = recv () in
      check "missing re is an error" true (Jsonin.str_member "error" r <> None);
      send {|{"id": 4, "op": "shutdown"}|};
      ignore (recv ()))

(* -- pool vs sequential agreement ---------------------------------------- *)

let test_pool_agreement () =
  let r =
    Server.selftest ~verbose:false
      ~cfg:{ small_cfg with queue_cap = 64 }
      ~n:48 ()
  in
  check_int "verdict mismatches" 0 r.Server.mismatches;
  check_int "invalid witnesses" 0 r.Server.bad_witnesses;
  check_int "protocol errors" 0 r.Server.protocol_errors;
  check "throughput measured" true (r.Server.pool_rps > 0.0);
  check "batch throughput measured" true (r.Server.batched_rps > 0.0)

let suite =
  ( "service",
    [
      Alcotest.test_case "jsonin round-trip" `Quick test_jsonin
    ; Alcotest.test_case "request parsing" `Quick test_parse_request
    ; Alcotest.test_case "match request parsing" `Quick test_parse_match_request
    ; Alcotest.test_case "batch envelope parsing" `Quick test_parse_batch
    ; Alcotest.test_case "draining line reader" `Quick test_lines_reader
    ; Alcotest.test_case "sched backpressure" `Quick test_sched_backpressure
    ; Alcotest.test_case "sched spill-over" `Quick test_sched_spill
    ; Alcotest.test_case "sched steal stress" `Quick test_sched_steal_stress
    ; Alcotest.test_case "lru accounting" `Quick test_lru
    ; Alcotest.test_case "lru shard layout" `Quick test_lru_shards
    ; Alcotest.test_case "lru sharded stress" `Quick test_lru_sharded_stress
    ; Alcotest.test_case "canonical cache keys" `Quick test_worker_keys
    ; Alcotest.test_case "worker witness validation" `Quick test_worker_witness
    ; Alcotest.test_case "session round-trip" `Quick test_session_roundtrip
    ; Alcotest.test_case "batch round-trip" `Quick test_batch_roundtrip
    ; Alcotest.test_case "batch robustness" `Quick test_batch_robustness
    ; Alcotest.test_case "analyze op" `Quick test_analyze_op
    ; Alcotest.test_case "contain ops" `Quick test_contain_op
    ; Alcotest.test_case "deadline isolation" `Quick test_deadline_isolation
    ; Alcotest.test_case "pool vs sequential agreement" `Quick
        test_pool_agreement
    ] )
