(* Tests for the hash-consed ERE representation: smart-constructor
   identities (the paper's "similarity" algebra), nullability, metrics,
   the parser and the printer. *)

module R = Sbd_regex.Regex.Make (Sbd_alphabet.Bdd)
module P = Sbd_regex.Parser.Make (R)

let re = P.parse_exn
let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let eq msg a b = check msg true (R.equal a b)
let neq msg a b = check msg false (R.equal a b)

(* -- smart constructors -------------------------------------------- *)

let test_units () =
  let a = R.chr (Char.code 'a') and b = R.chr (Char.code 'b') in
  eq "eps . r = r" a (R.concat R.eps a);
  eq "r . eps = r" a (R.concat a R.eps);
  eq "bot . r = bot" R.empty (R.concat R.empty a);
  eq "r . bot = bot" R.empty (R.concat a R.empty);
  eq "r | bot = r" a (R.alt a R.empty);
  eq "r | full = full" R.full (R.alt a R.full);
  eq "r & full = r" a (R.inter a R.full);
  eq "r & bot = bot" R.empty (R.inter a R.empty);
  eq "concat assoc" (R.concat a (R.concat b a)) (R.concat (R.concat a b) a)

let test_boolean_algebra () =
  let a = re "ab" and b = re "cd" and c = re "e*" in
  eq "or comm" (R.alt a b) (R.alt b a);
  eq "and comm" (R.inter a b) (R.inter b a);
  eq "or idemp" a (R.alt a a);
  eq "and idemp" a (R.inter a a);
  eq "or assoc" (R.alt a (R.alt b c)) (R.alt (R.alt a b) c);
  eq "and assoc" (R.inter a (R.inter b c)) (R.inter (R.inter a b) c);
  eq "double complement" a (R.compl (R.compl a));
  eq "~bot = .*" R.full (R.compl R.empty);
  eq "~.* = bot" R.empty (R.compl R.full);
  eq "r | ~r = .*" R.full (R.alt a (R.compl a));
  eq "r & ~r = bot" R.empty (R.inter a (R.compl a));
  neq "or is not and" (R.alt a b) (R.inter a b)

let test_star () =
  let a = re "ab" in
  eq "star idempotent" (R.star a) (R.star (R.star a));
  eq "eps* = eps" R.eps (R.star R.eps);
  eq "bot* = eps" R.eps (R.star R.empty);
  eq "(eps|r)* = r*" (R.star a) (R.star (R.alt R.eps a));
  eq ".*.* = .*" R.full (R.concat R.full R.full);
  eq ".*(.*r) = .*r" (R.concat R.full a) (R.concat R.full (R.concat R.full a))

let test_loop () =
  let a = R.chr (Char.code 'a') in
  eq "r{0,0} = eps" R.eps (R.loop a 0 (Some 0));
  eq "r{1,1} = r" a (R.loop a 1 (Some 1));
  eq "r{0,} = r*" (R.star a) (R.loop a 0 None);
  eq "r{2,1} = bot" R.empty (R.loop a 2 (Some 1));
  eq "eps{3,7} = eps" R.eps (R.loop R.eps 3 (Some 7));
  eq "bot{2} = bot" R.empty (R.loop R.empty 2 (Some 2));
  eq "bot{0,3} = eps" R.eps (R.loop R.empty 0 (Some 3));
  (* nullable body: r{m,n} = r{0,n}, r{m,} = r* *)
  let n = R.opt a in
  eq "nullable body drops lower bound" (R.loop n 0 (Some 5)) (R.loop n 3 (Some 5));
  eq "nullable body unbounded is star" (R.star n) (R.loop n 3 None)

let test_nullability () =
  let cases =
    [ ("a", false); ("a*", true); ("()", true); ("a&~a", false); ("a|()", true)
    ; ("ab", false); ("a?b?", true); ("~a", true); ("~()", false)
    ; ("~(a*)", false); ("a&b", false); ("a*&b*", true); ("a{0,3}", true)
    ; ("a{2,3}", false); ("(a?){2,3}", true); (".*", true)
    ; ("~(.*)", false); ("(ab)*|c", true) ]
  in
  List.iter
    (fun (s, expected) ->
      check (Printf.sprintf "nullable %S" s) expected (R.nullable (re s)))
    cases

(* -- parser --------------------------------------------------------- *)

let test_parser_structure () =
  let a = R.chr (Char.code 'a') and b = R.chr (Char.code 'b') in
  eq "literal concat" (R.concat a b) (re "ab");
  eq "alternation" (R.alt a b) (re "a|b");
  eq "intersection" (R.inter a b) (re "a&b");
  eq "complement binds prefix" (R.concat (R.compl a) b) (re "~ab");
  eq "complement of group" (R.compl (R.concat a b)) (re "~(ab)");
  eq "star on atom" (R.concat a (R.star b)) (re "ab*");
  eq "group star" (R.star (R.concat a b)) (re "(ab)*");
  eq "precedence | vs &" (R.alt (R.inter a b) b) (re "a&b|b");
  eq "dot is top" R.any (re ".");
  eq "dotstar is full" R.full (re ".*");
  eq "empty group" R.eps (re "()");
  eq "complementary pair is bot" R.empty (re "a&~a");
  eq "class" (R.pred (Sbd_alphabet.Bdd.of_ranges [ (97, 99) ])) (re "[a-c]");
  eq "negated class"
    (R.pred (Sbd_alphabet.Bdd.of_ranges (Sbd_alphabet.Algebra.complement_ranges [ (97, 99) ])))
    (re "[^a-c]");
  eq "digit class" (R.of_class Sbd_alphabet.Charclass.Digit) (re "\\d");
  eq "loop" (R.loop a 2 (Some 4)) (re "a{2,4}");
  eq "loop exact" (R.loop a 3 (Some 3)) (re "a{3}");
  eq "loop unbounded" (R.loop a 2 None) (re "a{2,}");
  eq "plus" (R.loop a 1 None) (re "a+");
  eq "opt" (R.loop a 0 (Some 1)) (re "a?");
  eq "escaped star" (R.chr (Char.code '*')) (re "\\*");
  eq "hex escape" (R.chr 0xAB) (re "\\xAB");
  eq "unicode escape" (R.chr 0x4E2D) (re "\\u{4E2D}")

let test_parser_errors () =
  let bad = [ "("; "a)"; "[a"; "\\u{110000}"; "*a"; "[]"; "a[]b"; "[z-a]" ] in
  List.iter
    (fun s ->
      match P.parse s with
      | Ok _ -> Alcotest.failf "expected parse error for %S" s
      | Error _ -> ())
    bad;
  (* the rejections carry a position pointing into the offending class *)
  (match P.parse "ab[]" with
  | Error (pos, msg) ->
    check_int "empty-class position" 3 pos;
    check_str "empty-class message" "empty character class" msg
  | Ok _ -> Alcotest.fail "expected parse error for \"ab[]\"");
  (match P.parse "x[z-a]" with
  | Error (pos, msg) ->
    check_int "inverted-range position" 5 pos;
    check_str "inverted-range message" "inverted range" msg
  | Ok _ -> Alcotest.fail "expected parse error for \"x[z-a]\"");
  (* Empty branches are permitted, as in most practical regex dialects. *)
  eq "empty alternation branch" (R.alt R.eps (R.chr (Char.code 'a'))) (re "a|")

let test_literal_brace () =
  let a = R.chr (Char.code 'a') and b = R.chr (Char.code 'b') in
  let lb = R.chr (Char.code '{') in
  (* A '{' that does not start a well-formed {m}/{m,}/{m,n} quantifier
     falls back to a literal character, as in POSIX/PCRE practice. *)
  eq "a{b is literal" (R.concat a (R.concat lb b)) (re "a{b");
  eq "dangling a{ is literal" (R.concat a lb) (re "a{");
  eq "a{2 without close is literal"
    (R.concat a (R.concat lb (R.chr (Char.code '2'))))
    (re "a{2");
  eq "leading { is literal" (R.concat lb (R.chr (Char.code '3'))) (re "{3");
  eq "a{2,b} is literal"
    (re "a\\{2,b\\}")
    (re "a{2,b}");
  (* ... but well-formed quantifiers still parse as loops. *)
  eq "a{2,4} still a loop" (R.loop a 2 (Some 4)) (re "a{2,4}");
  eq "a{3} still a loop" (R.loop a 3 (Some 3)) (re "a{3}");
  eq "a{2,} still a loop" (R.loop a 2 None) (re "a{2,}")

let test_print_parse_roundtrip () =
  let corpus =
    [ "ab|cd"; "a&b&c"; "~(ab)~(cd)"; "(a|b)*"; "a{2,4}b{3}"; "[a-z0-9]*"
    ; "\\d{4}-[a-zA-Z]{3}-\\d{2}"; ".*\\d.*&~(.*01.*)"; "(.*a.{5})&(.*b.{5})"
    ; "~(~a|~b)"; "a?b+c*"; "()|a"; "\\.\\*\\\\"; "[^a-z]" ]
  in
  List.iter
    (fun s ->
      let r = re s in
      let printed = R.to_string r in
      match P.parse printed with
      | Ok r' -> eq (Printf.sprintf "roundtrip %S -> %S" s printed) r r'
      | Error (pos, msg) ->
        Alcotest.failf "roundtrip %S: printed %S fails at %d: %s" s printed pos msg)
    corpus

(* -- metrics --------------------------------------------------------- *)

let test_metrics () =
  (* \d, '-', [a-zA-Z], '-', \d: loop bodies count their predicates once *)
  check_int "num_preds date" 5 (R.num_preds (re "\\d{4}-[a-zA-Z]{3}-\\d{2}"));
  check_int "preds distinct" 2 (List.length (R.preds (re "\\d\\d[a-z]\\d")));
  check "in_re positive" true (R.in_re (re "(ab|c)*d{2,3}"));
  check "in_re negative" false (R.in_re (re "a&b"));
  check "in_bre positive" true (R.in_bre (re "~(ab)&(c|~d)"));
  check "in_bre negative" false (R.in_bre (re "(a&b)c"));
  check "in_bre star over not" false (R.in_bre (re "(~a)*"))

let test_hash_consing () =
  let r1 = re ".*\\d.*&~(.*01.*)" and r2 = re ".*\\d.*&~(.*01.*)" in
  check "physically equal" true (r1 == r2);
  check_int "same id via compare" 0 (R.compare r1 r2)

let test_printer_shapes () =
  (* And/Or arguments print in canonical (id) order, so either source
     order is acceptable; parenthesization must be preserved. *)
  let printed = R.to_string (re "(a|b)&c") in
  check "or/and parens" true (printed = "(a|b)&c" || printed = "c&(a|b)");
  check_str "concat under star" "(ab)*" (R.to_string (re "(ab)*"));
  check_str "full" ".*" (R.to_string R.full);
  check_str "empty" "[]" (R.to_string R.empty);
  check_str "eps" "()" (R.to_string R.eps)

let suite =
  ( "regex",
    [ Alcotest.test_case "units and absorbing elements" `Quick test_units
    ; Alcotest.test_case "boolean algebra" `Quick test_boolean_algebra
    ; Alcotest.test_case "star rules" `Quick test_star
    ; Alcotest.test_case "loop rules" `Quick test_loop
    ; Alcotest.test_case "nullability" `Quick test_nullability
    ; Alcotest.test_case "parser structure" `Quick test_parser_structure
    ; Alcotest.test_case "parser errors" `Quick test_parser_errors
    ; Alcotest.test_case "literal brace fallback" `Quick test_literal_brace
    ; Alcotest.test_case "print/parse roundtrip" `Quick test_print_parse_roundtrip
    ; Alcotest.test_case "metrics" `Quick test_metrics
    ; Alcotest.test_case "hash consing" `Quick test_hash_consing
    ; Alcotest.test_case "printer shapes" `Quick test_printer_shapes ] )
