(* Tests for the byte-level streaming match engine (lib/engine,
   DESIGN.md §10): byte-class table vs code-point classification,
   anchored verdicts vs the DP oracle, linear find/count vs brute force
   and vs the matcher's per-position scans, the max_states cache-reset
   path, UTF-8 decoding (multi-byte, malformed, chunk-split scalars),
   stream/batch equivalence, and the linear-time regression that
   motivated the subsystem. *)

module A = Sbd_service.Default.A
module R = Sbd_service.Default.R
module P = Sbd_service.Default.P
module Ref = Sbd_service.Default.Ref
module Bc = Sbd_engine.Byteclass.Make (R)
module Eng = Sbd_engine.Search.Make (R)
module EngStream = Sbd_engine.Stream.Make (R)
module Matcher = Sbd_matcher.Matcher.Make (R)
module Obs = Sbd_obs.Obs
module U = Sbd_alphabet.Utf8

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let re s =
  match P.parse s with
  | Ok r -> r
  | Error (pos, msg) ->
    Alcotest.fail (Printf.sprintf "parse %S: %d: %s" s pos msg)

let span = Alcotest.(option (pair int int))

(* -- byte classification -------------------------------------------------- *)

(* In Byte mode every byte must classify by one table read, and agree
   with the range-table classification of the same code point; in Utf8
   mode the table covers exactly the ASCII plane. *)
let test_byteclass_table () =
  let r = re "[a-m]+x|\\d{2}|\xc3\xa9" in
  let bc = Bc.compile ~mode:Sbd_engine.Byteclass.Byte r in
  for b = 0 to 255 do
    check_int (Printf.sprintf "byte %d" b) (Bc.classify_cp bc b)
      bc.Bc.table.(b)
  done;
  let bc8 = Bc.compile ~mode:Sbd_engine.Byteclass.Utf8 r in
  for b = 0 to 127 do
    check_int (Printf.sprintf "ascii %d" b) (Bc.classify_cp bc8 b)
      bc8.Bc.table.(b)
  done;
  for b = 128 to 255 do
    check_int (Printf.sprintf "lead byte %d is deferred" b) (-1)
      bc8.Bc.table.(b)
  done;
  (* each representative classifies to its own class *)
  Array.iteri
    (fun cls cp -> check_int "representative" cls (Bc.classify_cp bc8 cp))
    bc8.Bc.representatives

(* -- anchored verdicts vs the DP oracle ----------------------------------- *)

let enum_words alphabet max_len =
  let rec go n =
    if n = 0 then [ [] ]
    else
      []
      :: List.concat_map
           (fun w -> List.map (fun c -> c :: w) alphabet)
           (go (n - 1))
  in
  List.sort_uniq compare (go max_len)

let ascii_string w = String.init (List.length w) (fun i -> Char.chr (List.nth w i))

let boolean_patterns =
  [ "ab*c"; "(a|b)*"; "a{2,3}"; ".*b.*&~(.*aa.*)"; "~(a*)"; "(a*b)&(.{2,4})" ]

let test_matches_vs_oracle () =
  let words = enum_words (List.map Char.code [ 'a'; 'b'; 'c' ]) 4 in
  List.iter
    (fun pat ->
      let r = re pat in
      let eng = Eng.create r in
      List.iter
        (fun w ->
          check
            (Printf.sprintf "%s on %S" pat (ascii_string w))
            (Ref.matches r w)
            (Eng.matches eng (ascii_string w)))
        words)
    boolean_patterns

(* -- find / count vs brute force ------------------------------------------ *)

let brute_find r (s : string) =
  let n = String.length s in
  let result = ref None in
  (try
     for i = 0 to n do
       for j = i to n do
         if
           !result = None
           && Ref.matches r
                (List.init (j - i) (fun k -> Char.code s.[i + k]))
         then begin
           result := Some (i, j);
           raise Exit
         end
       done
     done
   with Exit -> ());
  !result

let test_find_vs_brute () =
  let inputs = [ ""; "a"; "cab"; "ccabc"; "bbbb"; "acbacb"; "aabcaabc" ] in
  List.iter
    (fun pat ->
      let r = re pat in
      let eng = Eng.create r in
      let m = Matcher.create r in
      List.iter
        (fun s ->
          let expected = brute_find r s in
          Alcotest.check span
            (Printf.sprintf "find %s on %S" pat s)
            expected (Eng.find eng s);
          (* the rerouted matcher API and its historical scan agree *)
          Alcotest.check span
            (Printf.sprintf "matcher find %s on %S" pat s)
            expected (Matcher.find m s);
          Alcotest.check span
            (Printf.sprintf "find_scan %s on %S" pat s)
            expected (Matcher.find_scan m s);
          check_int
            (Printf.sprintf "count %s on %S" pat s)
            (Matcher.count_matching_prefixes_scan m s)
            (Matcher.count_matching_prefixes m s))
        inputs)
    boolean_patterns

(* -- cache-reset path ----------------------------------------------------- *)

(* A 2-state cap cannot hold any of these DFAs, so every scan churns
   through resets; verdicts and spans must be unchanged. *)
let test_max_states_reset () =
  let s = "ccabbbcacb" in
  List.iter
    (fun pat ->
      let r = re pat in
      let eng = Eng.create r in
      let eng2 = Eng.create ~max_states:2 r in
      check (pat ^ " verdict") (Eng.matches eng s) (Eng.matches eng2 s);
      Alcotest.check span (pat ^ " span") (Eng.find eng s) (Eng.find eng2 s);
      check_int (pat ^ " count")
        (Eng.count_matching_prefixes eng s)
        (Eng.count_matching_prefixes eng2 s))
    boolean_patterns;
  let eng2 = Eng.create ~max_states:2 (re ".*b.*&~(.*aa.*)") in
  ignore (Eng.find eng2 "ccabbbcacb" : (int * int) option);
  check "resets exercised" true ((Eng.stats eng2).Eng.resets > 0)

(* -- UTF-8 ---------------------------------------------------------------- *)

let test_utf8 () =
  let eng pat = Eng.create ~mode:Sbd_engine.Byteclass.Utf8 (re pat) in
  (* multi-byte scalars: é (2 bytes), 中 (3 bytes) *)
  check "h.llo matches héllo" true (Eng.matches (eng "h.llo") "h\xc3\xa9llo");
  check "literal é" true (Eng.matches (eng "\\u{E9}+") "\xc3\xa9\xc3\xa9");
  check "中 in a class" true (Eng.matches (eng ".\\u{4E2D}.") "a\xe4\xb8\xadb");
  check "byte-mode disagrees on purpose" false
    (Eng.matches (Eng.create (re "h.llo")) "h\xc3\xa9llo");
  (* spans are byte offsets: é is one '.', two bytes wide *)
  Alcotest.check span "span over é" (Some (1, 5))
    (Eng.find (eng "\\.(.)\\.") "x.\xc3\xa9.y");
  (* malformed bytes mid-string decode as one U+FFFD each, like
     decode_lossy *)
  let malformed = "h\xc3llo" in
  let cps = U.decode_lossy malformed in
  check "oracle on lossy decode" (Ref.matches (re "h.llo") cps) true;
  check "engine is total on malformed input" true
    (Eng.matches (eng "h.llo") malformed);
  check "stray continuation" true (Eng.matches (eng "a.b") "a\x80b");
  (* a truncated sequence at end of input is one maximal subpart: the
     two-byte tail reads as exactly one U+FFFD, not one per byte *)
  check "truncated tail is one scalar" true (Eng.matches (eng "a.") "a\xe4\xb8");
  check "truncated tail is not two" false (Eng.matches (eng "a..") "a\xe4\xb8");
  Alcotest.(check (list int))
    "decode_lossy agrees" [ Char.code 'a'; 0xFFFD ]
    (U.decode_lossy "a\xe4\xb8")

(* -- streaming ------------------------------------------------------------ *)

let chunked (eng : Eng.t) (s : string) (k : int) : EngStream.result =
  let st = EngStream.create eng in
  let n = String.length s in
  let pos = ref 0 in
  while !pos < n do
    let len = min k (n - !pos) in
    EngStream.feed ~off:!pos ~len st s;
    pos := !pos + len
  done;
  EngStream.finish st

let test_stream_equals_batch () =
  let cases =
    [
      ("ab*c", "xxabbbcyy", Sbd_engine.Byteclass.Byte);
      ("(a|b)*", "abba", Sbd_engine.Byteclass.Byte);
      (".*b.*&~(.*aa.*)", "ccabbbcacb", Sbd_engine.Byteclass.Byte);
      (* chunk sizes 1 and 2 split every 2- and 3-byte scalar *)
      ("h.llo", "h\xc3\xa9llo", Sbd_engine.Byteclass.Utf8);
      (".\\u{4E2D}.", "a\xe4\xb8\xadb", Sbd_engine.Byteclass.Utf8);
      ("a..", "a\xc3\xa9\xe4\xb8", Sbd_engine.Byteclass.Utf8);
    ]
  in
  List.iter
    (fun (pat, s, mode) ->
      let eng = Eng.create ~mode (re pat) in
      let full = Eng.matches eng s in
      let found = Eng.contains eng s in
      List.iter
        (fun k ->
          let r = chunked eng s k in
          check
            (Printf.sprintf "full %s %S k=%d" pat s k)
            full r.EngStream.full;
          Alcotest.(check (option int))
            (Printf.sprintf "found_end %s %S k=%d" pat s k)
            found r.EngStream.found_end;
          check_int
            (Printf.sprintf "bytes %s %S k=%d" pat s k)
            (String.length s) r.EngStream.bytes)
        [ 1; 2; 3; 7; String.length s ])
    cases;
  (* finish is idempotent *)
  let eng = Eng.create (re "ab") in
  let st = EngStream.create eng in
  EngStream.feed st "ab";
  let r1 = EngStream.finish st in
  let r2 = EngStream.finish st in
  check "finish idempotent" true (r1 = r2)

(* -- chunk splits are invisible (maximal-subpart carry at every seam) ----- *)

(* Mixed valid/invalid UTF-8: every way a scalar can go wrong, at the
   start, middle and end of the input. *)
let utf8_corpus =
  [
    "a\xc3\xa9b" (* valid 2-byte *)
  ; "a\xe4\xb8\xadb" (* valid 3-byte *)
  ; "a\xe4\xb8" (* truncated 3-byte at EOF *)
  ; "a\xc3" (* truncated 2-byte at EOF *)
  ; "\xe4\xb8" (* truncated, no prefix *)
  ; "\xe4" (* lone lead *)
  ; "a\x80b" (* stray continuation *)
  ; "\xc3\x41" (* lead + non-continuation *)
  ; "a\xc0\x80b" (* overlong *)
  ; "\xed\xa0\x80" (* surrogate *)
  ; "x\xf0\x9f\x98\x80y" (* beyond BMP (4-byte) *)
  ; "\xc3\xa9\xe4\xb8" (* valid then truncated *)
  ; "ab\xe4\xb8\xc3\xa9" (* truncated mid-string then valid *)
  ]

(* Every 3-way split of every corpus string (2-way and whole-string
   feeds are the degenerate cases k1 = k2 / k2 = n) must agree with the
   batch engine and with the one-shot lossy decode — in particular a
   chunk boundary inside a multi-byte sequence followed by EOF reads as
   exactly one U+FFFD, never one per carried byte. *)
let test_stream_all_splits () =
  List.iter
    (fun pat ->
      let r = re pat in
      let eng = Eng.create ~mode:Sbd_engine.Byteclass.Utf8 r in
      List.iter
        (fun s ->
          let n = String.length s in
          let batch_full = Eng.matches eng s in
          let batch_found = Eng.contains eng s in
          check
            (Printf.sprintf "batch vs decode_lossy %s %S" pat s)
            (Ref.matches r (U.decode_lossy s))
            batch_full;
          for k1 = 0 to n do
            for k2 = k1 to n do
              let st = EngStream.create eng in
              if k1 > 0 then EngStream.feed ~off:0 ~len:k1 st s;
              if k2 - k1 > 0 then EngStream.feed ~off:k1 ~len:(k2 - k1) st s;
              if n - k2 > 0 then EngStream.feed ~off:k2 ~len:(n - k2) st s;
              let res = EngStream.finish st in
              check
                (Printf.sprintf "full %s %S @%d,%d" pat s k1 k2)
                batch_full res.EngStream.full;
              Alcotest.(check (option int))
                (Printf.sprintf "found %s %S @%d,%d" pat s k1 k2)
                batch_found res.EngStream.found_end;
              check_int
                (Printf.sprintf "bytes %s %S @%d,%d" pat s k1 k2)
                n res.EngStream.bytes
            done
          done)
        utf8_corpus)
    [ "a.."; ".."; ".*\\u{FFFD}.*"; "a\\u{E9}b"; ".{2,4}"; "~(..)" ]

(* -- leftmost-earliest tie-breaking on nullable patterns ------------------ *)

(* A nullable pattern matches the empty word at every position, so
   [find] must return the span the leftmost-earliest rule certifies:
   minimal start, then minimal end — and the engine's backward [rev]
   pass, the per-position scan, and brute force must all agree. *)
let test_nullable_leftmost_earliest () =
  let nullable_patterns =
    [ "a*"; "(a|b)*"; "a?"; "a{0,3}"; "~(a)"; "~()"; "a*|bc"; "(ab)*"; "b*a*"
    ; "~(a.*)"; "c?ab"; "(|a)b?" ]
  in
  let inputs =
    [ ""; "a"; "b"; "c"; "ab"; "ba"; "ca"; "abc"; "cab"; "bca"; "ccc"; "cba"
    ; "aabca"; "bcacab" ]
  in
  List.iter
    (fun pat ->
      let r = re pat in
      let eng = Eng.create r in
      let m = Matcher.create r in
      List.iter
        (fun s ->
          let expected = brute_find r s in
          Alcotest.check span
            (Printf.sprintf "find %s on %S" pat s)
            expected (Eng.find eng s);
          Alcotest.check span
            (Printf.sprintf "find_scan %s on %S" pat s)
            expected (Matcher.find_scan m s);
          check_int
            (Printf.sprintf "count %s on %S" pat s)
            (Matcher.count_matching_prefixes_scan m s)
            (Eng.count_matching_prefixes eng s))
        inputs)
    nullable_patterns

(* -- the linearity regression --------------------------------------------- *)

(* The motivating pathology: searching [a*b] in 300k 'a's has no match,
   which made the per-position scan re-read the whole tail from every
   start position (quadratic, minutes at this size).  The engine's
   backward pass must do it in one linear sweep, comfortably inside a
   short wall-clock deadline — and the public [Matcher.find] now routes
   there. *)
let test_linear_find_within_deadline () =
  let n = 300_000 in
  let s = String.make n 'a' in
  let r = re "a*b" in
  let eng = Eng.create r in
  let deadline = Obs.Deadline.of_seconds 5.0 in
  (match Eng.find ~deadline eng s with
  | None -> ()
  | Some _ -> Alcotest.fail "a*b cannot match in aaaa...");
  check_int "count under deadline" 0
    (Eng.count_matching_prefixes ~deadline eng s);
  let m = Matcher.create r in
  Alcotest.check span "matcher.find is linear now" None (Matcher.find m s);
  (* with a match present, the span comes back leftmost-earliest *)
  let s' = s ^ "b" ^ String.make 10 'a' in
  Alcotest.check span "planted match" (Some (0, n + 1)) (Eng.find ~deadline eng s');
  (* an impossibly tight deadline must raise, not hang or lie *)
  let tight = Obs.Deadline.of_seconds 1e-9 in
  check "tight deadline raises" true
    (match Eng.find ~deadline:tight eng s with
    | exception Obs.Deadline_exceeded _ -> true
    | _ -> false)

let suite =
  ( "engine",
    [
      Alcotest.test_case "byteclass table" `Quick test_byteclass_table
    ; Alcotest.test_case "anchored vs oracle" `Quick test_matches_vs_oracle
    ; Alcotest.test_case "find vs brute force" `Quick test_find_vs_brute
    ; Alcotest.test_case "max_states reset path" `Quick test_max_states_reset
    ; Alcotest.test_case "utf8 decoding" `Quick test_utf8
    ; Alcotest.test_case "stream equals batch" `Quick test_stream_equals_batch
    ; Alcotest.test_case "stream invariant under all splits" `Quick
        test_stream_all_splits
    ; Alcotest.test_case "nullable leftmost-earliest" `Quick
        test_nullable_leftmost_earliest
    ; Alcotest.test_case "linear find under deadline" `Quick
        test_linear_find_within_deadline
    ] )
