let () =
  Alcotest.run "sbd"
    [ Test_alphabet.suite
    ; Test_regex.suite
    ; Test_core.suite
    ; Test_solver.suite
    ; Test_classic.suite
    ; Test_sfa.suite
    ; Test_smtlib.suite
    ; Test_props.suite
    ; Test_extensions.suite
    ; Test_integration.suite
    ; Test_graph.suite
    ; Test_misc.suite
    ; Test_rules.suite
    ; Test_ranges_stack.suite
    ; Test_obs.suite
    ; Test_tregex_hashcons.suite
    ; Test_service.suite
    ; Test_engine.suite
    ; Test_analysis.suite
    ; Test_contain.suite
    ; Test_locregex.suite ]
