(* End-to-end integration tests: benchmark generator -> SMT-LIB rendering
   -> s-expression parser -> evaluator -> answer, checked against the
   generator's ground-truth label.  This exercises the full pipeline a
   downstream user of the .smt2 corpus would run, including the
   top-level-assertion decomposition of To_smt.script. *)

module A = Sbd_alphabet.Bdd
module R = Sbd_regex.Regex.Make (A)
module P = Sbd_regex.Parser.Make (R)
module E = Sbd_smtlib.Eval.Make (R)
module T = Sbd_smtlib.To_smt.Make (R)
module I = Sbd_benchgen.Instance
module Cf = Sbd_regex.Casefold.Make (R)
module D = Sbd_core.Deriv.Make (R)

let check = Alcotest.(check bool)

let roundtrip_instances name instances =
  List.iter
    (fun (inst : I.t) ->
      match inst.expected with
      | I.Unlabeled -> ()
      | label -> (
        match P.parse inst.pattern with
        | Error (pos, msg) ->
          Alcotest.failf "%s/%s: pattern parse error at %d: %s" name inst.id pos msg
        | Ok r -> (
          let script = T.script r in
          match (E.run ~budget:400_000 script).E.outcomes with
          | [ E.Sat _ ] ->
            check (Printf.sprintf "%s/%s sat" name inst.id) true (label = I.Sat)
          | [ E.Unsat ] ->
            check (Printf.sprintf "%s/%s unsat" name inst.id) true (label = I.Unsat)
          | [ E.Unknown why ] ->
            Alcotest.failf "%s/%s: unknown (%s)" name inst.id why
          | _ -> Alcotest.failf "%s/%s: unexpected outcome count" name inst.id)))
    instances

let test_handwritten_roundtrip () =
  roundtrip_instances "date" (Sbd_benchgen.Handwritten.date ());
  roundtrip_instances "loops" (Sbd_benchgen.Handwritten.loops ());
  roundtrip_instances "blowup" (Sbd_benchgen.Handwritten.blowup ())

let test_password_roundtrip () =
  roundtrip_instances "password" (Sbd_benchgen.Handwritten.password ())

let test_sampled_standard_roundtrip () =
  let sample l = List.filteri (fun i _ -> i mod 17 = 0) l in
  roundtrip_instances "kaluza" (sample (Sbd_benchgen.Standard.kaluza ()));
  roundtrip_instances "slog" (sample (Sbd_benchgen.Standard.slog ()));
  roundtrip_instances "norn" (sample (Sbd_benchgen.Standard.norn ()));
  roundtrip_instances "norn-bool" (sample (Sbd_benchgen.Standard.norn_boolean ()))

(* The SMT-LIB rendering preserves the language: parse the rendered term
   back through the evaluator's regex translation and compare by
   matching. *)
let test_to_smt_term_roundtrip () =
  let patterns =
    [ "ab|cd"; "a{2,4}"; "a{3,}"; "[a-c]x?"; "~(.*01.*)&.*\\d.*"
    ; "\\d{4}-[a-zA-Z]{3}-\\d{2}"; "()"; "a&~a"; ".*" ]
  in
  let words = [ ""; "a"; "ab"; "cd"; "aa"; "aaa"; "aaaa"; "ax"; "01"; "7"
              ; "2019-Nov-25" ] in
  List.iter
    (fun pat ->
      let r = P.parse_exn pat in
      let term = T.term r in
      match Sbd_smtlib.Sexp.parse_all term with
      | Error (pos, msg) -> Alcotest.failf "%s: bad term at %d: %s" pat pos msg
      | Ok [ sexp ] ->
        let r' = E.regex_of_sexp sexp in
        List.iter
          (fun w ->
            check
              (Printf.sprintf "%s on %S" pat w)
              (D.matches_string r w) (D.matches_string r' w))
          words
      | Ok _ -> Alcotest.failf "%s: expected one term" pat)
    patterns

(* -- case folding -------------------------------------------------------- *)

let test_case_folding () =
  let r = Cf.case_insensitive (P.parse_exn "hello[0-9]") in
  List.iter
    (fun (s, expected) ->
      check (Printf.sprintf "(?i)hello on %S" s) expected (D.matches_string r s))
    [ ("hello5", true); ("HELLO5", true); ("HeLlO9", true); ("hell5", false)
    ; ("hello", false) ];
  (* classes fold too *)
  let cls = Cf.case_insensitive (P.parse_exn "[a-c]+") in
  check "folded class accepts upper" true (D.matches_string cls "AbC");
  check "folded class rejects others" false (D.matches_string cls "AbD");
  (* non-letters are untouched *)
  let digits = Cf.case_insensitive (P.parse_exn "\\d{2}") in
  check "digits unchanged" true (D.matches_string digits "42")

let suite =
  ( "integration",
    [ Alcotest.test_case "handwritten suites via SMT-LIB" `Slow test_handwritten_roundtrip
    ; Alcotest.test_case "password suite via SMT-LIB" `Slow test_password_roundtrip
    ; Alcotest.test_case "standard suites via SMT-LIB (sampled)" `Slow
        test_sampled_standard_roundtrip
    ; Alcotest.test_case "regex -> SMT-LIB term roundtrip" `Quick test_to_smt_term_roundtrip
    ; Alcotest.test_case "case folding" `Quick test_case_folding ] )
