(* Tests for the extension modules: GraphViz rendering, coinductive
   language equivalence, the deep simplifier, and the SRM-style matcher. *)

module A = Sbd_alphabet.Bdd
module R = Sbd_regex.Regex.Make (A)
module P = Sbd_regex.Parser.Make (R)
module D = Sbd_core.Deriv.Make (R)
module Dot = Sbd_core.Dot.Make (R)
module Sbfa = Sbd_core.Sbfa.Make (R)
module Eq = Sbd_core.Lang_equiv.Make (R)
module Simp = Sbd_regex.Simplify.Make (R)
module Ref = Sbd_classic.Refmatch.Make (R)
module Matcher = Sbd_matcher.Matcher.Make (R)
module S = Sbd_solver.Solve.Make (R)
module Safa = Sbd_core.Safa.Make (R)

let re = P.parse_exn
let check = Alcotest.(check bool)
let eq msg a b = check msg true (R.equal a b)
let word s = List.init (String.length s) (fun i -> Char.code s.[i])

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* -- dot rendering ------------------------------------------------------ *)

let test_dot_derivative_graph () =
  (* Figure 2d: the derivative graph of the complemented pattern has two live states *)
  let dot = Dot.derivative_graph (re "~(.*01.*)") in
  check "digraph" true (contains_sub dot "digraph");
  check "has initial marker" true (contains_sub dot "init ->");
  check "complement state present" true (contains_sub dot "~(.*01.*)");
  check "R3 state present" true (contains_sub dot "~(1.*)");
  (* nullable states are double circles *)
  check "final shape" true (contains_sub dot "doublecircle")

let test_dot_sbfa () =
  let m = Sbfa.build_exn (re ".*[a-z].*&.*\\d.*") in
  let dot = Dot.sbfa_boolean m in
  check "digraph" true (contains_sub dot "digraph");
  check "transition notes" true (contains_sub dot "shape=note")

(* -- coinductive equivalence -------------------------------------------- *)

let test_equiv_positive () =
  let cases =
    [ ("a*", "()|aa*"); ("(a|b)*", "(a*b*)*"); ("~(a|b)", "~a&~b")
    ; ("a{2,4}", "aa(a?){2}"); ("(ab)*a", "a(ba)*")
    ; (".*01.*", ".*01.*|01"); ("~(~(ab))", "ab")
    ; ("a*&b*", "()"); ("(a|b)*&~(.*aa.*)&~(.*bb.*)", "(ab)*(a?)|(ba)*(b?)")
    ]
  in
  List.iter
    (fun (x, y) ->
      match Eq.check (re x) (re y) with
      | Some Eq.Equivalent -> ()
      | Some (Eq.Counterexample w) ->
        Alcotest.failf "%s ~ %s: counterexample %s" x y
          (String.concat "" (List.map (fun c -> String.make 1 (Char.chr c)) w))
      | None -> Alcotest.failf "%s ~ %s: budget exceeded" x y)
    cases

let test_equiv_negative () =
  let cases =
    [ ("a*", "a+"); ("(ab)*", "(ba)*"); ("~(ab)", "~(ba)")
    ; (".*0.*", ".*01.*"); ("a{2,4}", "a{2,5}") ]
  in
  List.iter
    (fun (x, y) ->
      let rx = re x and ry = re y in
      match Eq.check rx ry with
      | Some (Eq.Counterexample w) ->
        (* the witness really distinguishes the two languages *)
        check
          (Printf.sprintf "cex for %s vs %s" x y)
          true
          (Ref.matches rx w <> Ref.matches ry w)
      | Some Eq.Equivalent -> Alcotest.failf "%s and %s wrongly equivalent" x y
      | None -> Alcotest.failf "%s vs %s: budget exceeded" x y)
    cases

let test_equiv_agrees_with_solver () =
  let session = S.create_session () in
  let pairs =
    [ ("a*b", "a*b"); ("a?b?", "(a|b)?"); ("(a&b)c", "a&~a"); ("~(a&~a)", ".*")
    ; ("(ab|a)*", "(a|ab)*"); ("a{3}{3}", "a{9}"); ("a{3,4}{2}", "a{6,8}") ]
  in
  List.iter
    (fun (x, y) ->
      let rx = re x and ry = re y in
      let coinductive = Eq.equiv rx ry in
      let via_complement = S.equiv session rx ry in
      check
        (Printf.sprintf "agree on %s vs %s" x y)
        true
        (coinductive = via_complement))
    pairs

(* -- simplifier ---------------------------------------------------------- *)

let test_simplify_shapes () =
  let simp s = Simp.simplify (re s) in
  eq "absorption or" (re "ab") (simp "ab|(ab&cd)");
  eq "absorption and" (re "ab") (simp "ab&(ab|cd)");
  eq "pred subsumption or" (re "\\w") (simp "[a-c]|\\w");
  eq "pred subsumption and" (re "[a-c]") (simp "[a-c]&\\w");
  eq "star of star" (re "a*") (simp "(a*)*");
  eq "star union flatten" (re "(a|b)*") (simp "(a*|b)*");
  eq "star concat flatten" (re "(a|b)*") (simp "(a*b*)*");
  eq "eps or rr*" (re "a*") (simp "()|aa*");
  eq "loop fusion" (re "a{6,8}") (simp "a{2,3}a{4,5}");
  eq "a then a star" (re "a+") (simp "aa*");
  eq "loop unnest" (re "a{9}") (simp "a{3}{3}");
  eq "loop unnest tiling" (re "a{6,12}") (simp "a{3,4}{2,3}");
  (* non-tiling nested loops must NOT be merged: (a{2,3}){0,2} has a gap *)
  let nested = simp "(a{2,2}){0,2}" in
  check "gap preserved" false (R.equal nested (re "a{0,4}"))

let test_simplify_preserves_language () =
  let corpus =
    [ "ab|(ab&cd)"; "(a*|b)*"; "(a*b*)*"; "a{2,3}a{4,5}"; "a{3,4}{2,3}"
    ; "(a{2,2}){0,2}"; "~((a*)*)&(ab)*"; "[a-c]|\\w|[x-z]"; "()|aa*|b"
    ; "((a|b)*&~(.*aa.*))|(a?){3}" ]
  in
  let alphabet = List.map Char.code [ 'a'; 'b'; 'c'; 'x' ] in
  let rec words n =
    if n = 0 then [ [] ]
    else
      [] :: List.concat_map (fun w -> List.map (fun c -> c :: w) alphabet) (words (n - 1))
  in
  let ws = words 5 in
  List.iter
    (fun s ->
      let r = re s in
      let r' = Simp.simplify r in
      check (Printf.sprintf "%s does not grow" s) true (R.size r' <= R.size r);
      List.iter
        (fun w ->
          check
            (Printf.sprintf "simplify %s language" s)
            (Ref.matches r w) (Ref.matches r' w))
        ws)
    corpus

(* -- matcher -------------------------------------------------------------- *)

let test_matcher_basic () =
  let cases =
    [ (".*\\d.*&~(.*01.*)", [ ("0", true); ("01", false); ("a5b0", true); ("", false) ])
    ; ("(a|b)*abb", [ ("aabb", true); ("abab", false); ("abb", true) ])
    ; ("~((ab)*)", [ ("ab", false); ("aba", true); ("", false) ])
    ; ("\\w+@\\w+", [ ("me@here", true); ("me@", false) ])
    ]
  in
  List.iter
    (fun (pat, words) ->
      let m = Matcher.create (re pat) in
      List.iter
        (fun (s, expected) ->
          check (Printf.sprintf "%s on %S" pat s) expected (Matcher.matches_string m s))
        words)
    cases

let test_matcher_agrees_with_oracle () =
  let patterns =
    [ "a*b*"; "(ab|ba)*"; ".*aa.*"; "~(.*aa.*)"; "a{2,4}&(a|b)*"; "[ab]{3}"
    ; "(a|b)*&~(b*)" ]
  in
  let alphabet = List.map Char.code [ 'a'; 'b'; 'c' ] in
  let rec words n =
    if n = 0 then [ [] ]
    else
      [] :: List.concat_map (fun w -> List.map (fun c -> c :: w) alphabet) (words (n - 1))
  in
  List.iter
    (fun pat ->
      let r = re pat in
      let m = Matcher.create r in
      List.iter
        (fun w -> check ("matcher " ^ pat) (Ref.matches r w) (Matcher.matches m w))
        (words 5))
    patterns

let test_matcher_dfa_reuse () =
  let m = Matcher.create (re ".*\\d.*") in
  ignore (Matcher.matches_string m "abc123");
  let states_after_first = Matcher.state_count m in
  ignore (Matcher.matches_string m "xyz789");
  check "no new states on repeat input" true
    (Matcher.state_count m = states_after_first);
  (* the pattern has 1 predicate -> 2 minterms *)
  Alcotest.(check int) "alphabet size" 2 (Matcher.alphabet_size m);
  check "few states" true (Matcher.state_count m <= 3)

let test_matcher_scan () =
  let m = Matcher.create (re "ab") in
  (* positions with a prefix matching "ab": indices of 'a' followed by 'b' *)
  Alcotest.(check int) "prefix matches" 2 (Matcher.count_matching_prefixes m "abxab")

let test_matcher_find () =
  let m = Matcher.create (re "ab+") in
  (* leftmost-earliest semantics: the shortest match at position 2 *)
  (match Matcher.find m "xxabbby" with
  | Some (2, 4) -> ()
  | Some (i, j) -> Alcotest.failf "expected (2,4), got (%d,%d)" i j
  | None -> Alcotest.fail "expected a match");
  check "no match" true (Matcher.find m "xxay" = None);
  (* leftmost-earliest: shortest match at the first viable position *)
  (match Matcher.find (Matcher.create (re "a+")) "baaa" with
  | Some (1, 2) -> ()
  | other ->
    Alcotest.failf "expected (1,2), got %s"
      (match other with Some (i, j) -> Printf.sprintf "(%d,%d)" i j | None -> "none"));
  (* nullable pattern matches at position 0 *)
  match Matcher.find (Matcher.create (re "a*")) "bbb" with
  | Some (0, 0) -> ()
  | _ -> Alcotest.fail "nullable pattern should match empty at 0"

let test_coinductive_subset () =
  let cases =
    [ ("a+", "a*", true); ("a*", "a+", false); ("a{2,4}", "a{1,5}", true)
    ; ("(ab)*", "(a|b)*", true); ("(a|b)*", "(ab)*", false)
    ; (".*01.*", ".*0.*", true) ]
  in
  List.iter
    (fun (x, y, expected) ->
      Alcotest.(check (option bool))
        (Printf.sprintf "%s subset %s" x y)
        (Some expected)
        (Eq.subset (re x) (re y)))
    cases

let test_matcher_unicode () =
  let m = Matcher.create (re "\\w+") in
  check "CJK word chars" true (Matcher.matches m [ 0x4E2D; 0x6587 ]);
  check "punctuation is not a word char" false (Matcher.matches m [ Char.code '!' ])

(* -- SAFA (Section 8.3) --------------------------------------------------- *)

let test_safa_acceptance () =
  let cases =
    [ (".*\\d.*&~(.*01.*)", [ ("0", true); ("01", false); ("10", true); ("", false) ])
    ; ("(a|b)*abb", [ ("aabb", true); ("abab", false) ])
    ; ("~(a*)", [ ("b", true); ("aa", false); ("", false) ])
    ; ("~(~a&~b)", [ ("a", true); ("b", true); ("c", false) ])
    ; ("(.*a.{3})&(.*b.{2})", [ ("abxxx", false); ("abxx", true); ("baxxx", false)
                              ; ("xabxx", true) ])
    ]
  in
  List.iter
    (fun (pat, words) ->
      match Safa.of_sbfa_regex (re pat) with
      | None -> Alcotest.failf "SAFA budget exceeded for %s" pat
      | Some m ->
        List.iter
          (fun (s, expected) ->
            check (Printf.sprintf "safa %s on %S" pat s) expected
              (Safa.accepts m (word s)))
          words)
    cases

let test_safa_vs_oracle () =
  let patterns =
    [ "a*b*"; "~(.*aa.*)"; "(ab|b)*&~(b*)"; ".*0.*&.*1.*"; "~((a|b){2})"
    ; "a{1,3}&~(aa)" ]
  in
  let alphabet = List.map Char.code [ 'a'; 'b'; '0'; '1' ] in
  let rec words n =
    if n = 0 then [ [] ]
    else
      [] :: List.concat_map (fun w -> List.map (fun c -> c :: w) alphabet) (words (n - 1))
  in
  List.iter
    (fun pat ->
      let r = re pat in
      match Safa.of_sbfa_regex r with
      | None -> Alcotest.failf "SAFA budget exceeded for %s" pat
      | Some m ->
        List.iter
          (fun w ->
            check
              (Printf.sprintf "safa oracle %s" pat)
              (Ref.matches r w) (Safa.accepts m w))
          (words 4))
    patterns

let test_safa_negated_states () =
  (* complement handling doubles states with q-bar: check the count stays
     finite and small for B(RE) *)
  match Safa.of_sbfa_regex (re "~(.*01.*)&.*\\d.*") with
  | None -> Alcotest.fail "budget exceeded"
  | Some m -> check "bounded state count" true (Safa.num_states m <= 16)

let suite =
  ( "extensions",
    [ Alcotest.test_case "dot: derivative graph" `Quick test_dot_derivative_graph
    ; Alcotest.test_case "dot: SBFA" `Quick test_dot_sbfa
    ; Alcotest.test_case "equiv: positive" `Quick test_equiv_positive
    ; Alcotest.test_case "equiv: negative" `Quick test_equiv_negative
    ; Alcotest.test_case "equiv: agrees with solver" `Quick test_equiv_agrees_with_solver
    ; Alcotest.test_case "simplify: shapes" `Quick test_simplify_shapes
    ; Alcotest.test_case "simplify: language preserved" `Quick test_simplify_preserves_language
    ; Alcotest.test_case "matcher: basics" `Quick test_matcher_basic
    ; Alcotest.test_case "matcher: agrees with oracle" `Quick test_matcher_agrees_with_oracle
    ; Alcotest.test_case "matcher: DFA reuse" `Quick test_matcher_dfa_reuse
    ; Alcotest.test_case "matcher: scan" `Quick test_matcher_scan
    ; Alcotest.test_case "matcher: unicode" `Quick test_matcher_unicode
    ; Alcotest.test_case "safa: acceptance" `Quick test_safa_acceptance
    ; Alcotest.test_case "safa: oracle agreement" `Quick test_safa_vs_oracle
    ; Alcotest.test_case "safa: negated states" `Quick test_safa_negated_states
    ; Alcotest.test_case "matcher: find" `Quick test_matcher_find
    ; Alcotest.test_case "equiv: coinductive subset" `Quick test_coinductive_subset ] )
