(* Property-based tests (qcheck): random extended regexes over a small
   sample alphabet, cross-checked between the symbolic-derivative engine,
   the classical engines, the SBFA, the solvers, and the independent
   dynamic-programming oracle.

   Properties covered:
   - Theorem 4.3 (symbolic derivative = classical derivative, as languages)
   - Lemma 4.2 (negation of transition regexes)
   - semantic preservation of NNF and DNF
   - Theorem 7.2 (SBFA acceptance) and Theorem 7.3 (linear state bound)
   - soundness of solver witnesses and agreement between solvers
   - minterm partition property, BDD/ranges algebra agreement
   - printer/parser round-trips *)

module A = Sbd_alphabet.Bdd
module R = Sbd_regex.Regex.Make (A)
module P = Sbd_regex.Parser.Make (R)
module D = Sbd_core.Deriv.Make (R)
module Tr = D.Tr
module Sbfa = Sbd_core.Sbfa.Make (R)
module S = Sbd_solver.Solve.Make (R)
module Ref = Sbd_classic.Refmatch.Make (R)
module Brz = Sbd_classic.Brzozowski.Make (R)
module MSolve = Sbd_classic.Minterm_solver.Make (R)
module Simp = Sbd_regex.Simplify.Make (R)
module Eq = Sbd_core.Lang_equiv.Make (R)
module Matcher = Sbd_matcher.Matcher.Make (R)
module Safa = Sbd_core.Safa.Make (R)

let ca = Char.code 'a'
let cb = Char.code 'b'
let c0 = Char.code '0'
let c1 = Char.code '1'
let cx = Char.code 'x'
let sample_alphabet = [ ca; cb; c0; c1; cx ]

(* -- generators ------------------------------------------------------- *)

let gen_pred : A.pred QCheck2.Gen.t =
  QCheck2.Gen.oneofl
    [ A.of_ranges [ (ca, ca) ]
    ; A.of_ranges [ (cb, cb) ]
    ; A.of_ranges [ (c0, c0) ]
    ; A.of_ranges [ (c1, c1) ]
    ; A.of_ranges [ (ca, cb) ]
    ; A.of_ranges [ (c0, c1) ]
    ; A.of_ranges [ (ca, cb); (c0, c0) ]
    ; A.neg (A.of_ranges [ (ca, ca) ])
    ; A.top
    ]

(* Random extended regexes.  [boolean] controls whether &/~ may appear;
   when [bre] is set they may appear only above classical subterms. *)
let gen_regex ~boolean : R.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let leaf =
    frequency
      [ (6, map R.pred gen_pred); (1, pure R.eps); (1, pure R.empty) ]
  in
  fix
    (fun self n ->
      if n <= 1 then leaf
      else
        let sub = self (n / 2) in
        let base =
          [ (4, map2 R.concat sub sub)
          ; (3, map2 R.alt sub sub)
          ; (2, map R.star sub)
          ; (1,
             map2
               (fun r (m, k) -> R.loop r m (Some (m + k)))
               sub
               (pair (int_bound 2) (int_bound 2)))
          ; (2, leaf)
          ]
        in
        let bool_ops =
          [ (2, map2 R.inter sub sub); (2, map R.compl sub) ]
        in
        frequency (if boolean then base @ bool_ops else base))
    8

let gen_word : int list QCheck2.Gen.t =
  QCheck2.Gen.(list_size (int_bound 6) (oneofl sample_alphabet))

let print_regex r = R.to_string r

let print_regex_word (r, w) =
  Printf.sprintf "%s on %s" (R.to_string r)
    (String.concat "" (List.map (fun c -> Printf.sprintf "%c" (Char.chr c)) w))

let count = 300

let prop name gen print f = QCheck2.Test.make ~name ~count ~print gen f

(* enumerate all words over a sub-alphabet up to a length *)
let words_upto alphabet n =
  let rec go n = if n = 0 then [ [] ] else
    let shorter = go (n - 1) in
    shorter
    @ (List.concat_map
         (fun w -> List.map (fun c -> c :: w) alphabet)
         (List.filter (fun w -> List.length w = n - 1) shorter))
  in
  go n

let short_words = words_upto [ ca; cb; c0; c1 ] 4

(* -- engine agreement -------------------------------------------------- *)

let t_deriv_vs_oracle =
  prop "derivative matching = oracle"
    QCheck2.Gen.(pair (gen_regex ~boolean:true) gen_word)
    print_regex_word
    (fun (r, w) -> D.matches r w = Ref.matches r w)

let t_brz_vs_oracle =
  prop "brzozowski matching = oracle"
    QCheck2.Gen.(pair (gen_regex ~boolean:true) gen_word)
    print_regex_word
    (fun (r, w) -> Brz.matches r w = Ref.matches r w)

let t_thm_4_3 =
  (* L(delta(r)(c)) = L(Brz_c(r)) compared as languages over short words *)
  prop "Theorem 4.3"
    QCheck2.Gen.(pair (gen_regex ~boolean:true) (oneofl sample_alphabet))
    (fun (r, c) -> Printf.sprintf "%s / %c" (R.to_string r) (Char.chr c))
    (fun (r, c) ->
      let lhs = D.derive c r and rhs = Brz.derive c r in
      if R.equal lhs rhs then true
      else List.for_all (fun w -> Ref.matches lhs w = Ref.matches rhs w) short_words)

let t_lemma_4_2 =
  prop "Lemma 4.2 (negation)"
    QCheck2.Gen.(pair (gen_regex ~boolean:true) (oneofl sample_alphabet))
    (fun (r, c) -> Printf.sprintf "%s / %c" (R.to_string r) (Char.chr c))
    (fun (r, c) ->
      let t = D.delta r in
      let lhs = Tr.apply (Tr.neg t) c and rhs = R.compl (Tr.apply t c) in
      if R.equal lhs rhs then true
      else List.for_all (fun w -> Ref.matches lhs w = Ref.matches rhs w) short_words)

let t_dnf_semantics =
  prop "DNF preserves semantics"
    QCheck2.Gen.(pair (gen_regex ~boolean:true) (oneofl sample_alphabet))
    (fun (r, c) -> Printf.sprintf "%s / %c" (R.to_string r) (Char.chr c))
    (fun (r, c) ->
      let t = D.delta r in
      let d = Tr.dnf t in
      Tr.is_dnf d
      &&
      let lhs = Tr.apply d c and rhs = Tr.apply t c in
      if R.equal lhs rhs then true
      else List.for_all (fun w -> Ref.matches lhs w = Ref.matches rhs w) short_words)

let t_nnf_semantics =
  prop "NNF preserves semantics"
    QCheck2.Gen.(pair (gen_regex ~boolean:true) (oneofl sample_alphabet))
    (fun (r, c) -> Printf.sprintf "%s / %c" (R.to_string r) (Char.chr c))
    (fun (r, c) ->
      (* build a transition regex with an explicit complement node *)
      let t = Tr.raw_compl (D.delta r) in
      let lhs = Tr.apply (Tr.nnf t) c and rhs = Tr.apply t c in
      if R.equal lhs rhs then true
      else List.for_all (fun w -> Ref.matches lhs w = Ref.matches rhs w) short_words)

(* -- SBFA --------------------------------------------------------------- *)

let t_sbfa_accepts =
  prop "Theorem 7.2 (SBFA acceptance = oracle)"
    QCheck2.Gen.(pair (gen_regex ~boolean:true) gen_word)
    print_regex_word
    (fun (r, w) ->
      match Sbfa.build ~max_states:400 r with
      | None -> QCheck2.assume_fail ()
      | Some m -> Sbfa.accepts m w = Ref.matches r w)

let t_thm_7_3 =
  prop "Theorem 7.3 (linear bound on B(RE))"
    (gen_regex ~boolean:true)
    print_regex
    (fun r ->
      QCheck2.assume (R.in_bre r);
      match Sbfa.build ~max_states:5000 r with
      | None -> false
      | Some m -> Sbfa.linear_bound_holds m)

(* -- solver ------------------------------------------------------------- *)

let t_solver_sound =
  let session = S.create_session () in
  prop "solver witnesses are sound"
    (gen_regex ~boolean:true)
    print_regex
    (fun r ->
      match S.solve ~budget:20_000 session r with
      | S.Sat w -> Ref.matches r w
      | S.Unsat ->
        (* no short word over the sample alphabet may match *)
        List.for_all (fun w -> not (Ref.matches r w)) short_words
      | S.Unknown _ -> QCheck2.assume_fail ())

let t_solvers_agree =
  let session = S.create_session () in
  prop "dz3 and minterm solver agree"
    (gen_regex ~boolean:true)
    print_regex
    (fun r ->
      match (S.solve ~budget:20_000 session r, MSolve.solve ~budget:20_000 r) with
      | S.Sat _, MSolve.Sat _ | S.Unsat, MSolve.Unsat -> true
      | S.Unknown _, _ | _, MSolve.Unknown _ -> QCheck2.assume_fail ()
      | _ -> false)

let t_equiv_reflexive =
  let session = S.create_session () in
  prop "equiv is reflexive; subset of union"
    QCheck2.Gen.(pair (gen_regex ~boolean:true) (gen_regex ~boolean:true))
    (fun (r, s) -> Printf.sprintf "%s / %s" (R.to_string r) (R.to_string s))
    (fun (r, s) ->
      match
        (S.equiv ~budget:20_000 session r r, S.subset ~budget:20_000 session r (R.alt r s))
      with
      | Some true, Some true -> true
      | None, _ | _, None -> QCheck2.assume_fail ()
      | _ -> false)

(* -- algebra ------------------------------------------------------------- *)

let gen_ranges =
  QCheck2.Gen.(
    list_size (int_range 1 4)
      (map
         (fun (lo, len) -> (lo, min Sbd_alphabet.Algebra.max_char (lo + len)))
         (pair (int_bound Sbd_alphabet.Algebra.max_char) (int_bound 500))))

let t_bdd_vs_ranges =
  prop "BDD and ranges algebras agree"
    QCheck2.Gen.(pair gen_ranges gen_ranges)
    (fun _ -> "ranges")
    (fun (rs1, rs2) ->
      let module Rg = Sbd_alphabet.Ranges in
      let b1 = A.of_ranges rs1 and b2 = A.of_ranges rs2 in
      let g1 = Rg.of_ranges rs1 and g2 = Rg.of_ranges rs2 in
      A.ranges (A.conj b1 b2) = Rg.ranges (Rg.conj g1 g2)
      && A.ranges (A.disj b1 b2) = Rg.ranges (Rg.disj g1 g2)
      && A.ranges (A.neg b1) = Rg.ranges (Rg.neg g1)
      && A.size b1 = Rg.size g1)

let t_minterms_partition =
  let module M = Sbd_alphabet.Minterm.Make (A) in
  prop "minterms partition the alphabet"
    QCheck2.Gen.(list_size (int_range 1 4) gen_pred)
    (fun _ -> "preds")
    (fun preds ->
      let mts = M.minterms preds in
      let disjoint =
        List.for_all
          (fun p ->
            List.for_all
              (fun q -> A.equal p q || A.is_bot (A.conj p q))
              mts)
          mts
      in
      let total = List.fold_left A.disj A.bot mts in
      disjoint && A.is_top total && List.for_all (fun p -> not (A.is_bot p)) mts)

let t_choose_sound =
  prop "choose returns a member"
    gen_pred
    (fun _ -> "pred")
    (fun p ->
      match A.choose p with
      | Some c -> A.mem c p
      | None -> A.is_bot p)

(* -- extensions: simplifier, coinductive equivalence, matcher ------------ *)

let t_simplify_preserves =
  prop "simplify preserves the language and never grows"
    QCheck2.Gen.(pair (gen_regex ~boolean:true) gen_word)
    print_regex_word
    (fun (r, w) ->
      let r' = Simp.simplify r in
      R.size r' <= R.size r && Ref.matches r w = Ref.matches r' w)

let t_simplify_equiv_to_original =
  (* stronger check on a subsample: decide equivalence symbolically *)
  prop "simplify output is equivalent (decision procedure)"
    (gen_regex ~boolean:true)
    print_regex
    (fun r ->
      let r' = Simp.simplify r in
      if R.equal r r' then true
      else
        match Eq.equiv ~max_pairs:20_000 r r' with
        | Some b -> b
        | None -> QCheck2.assume_fail ())

let t_lang_equiv_vs_solver =
  let session = S.create_session () in
  prop "coinductive equivalence agrees with complement-based equivalence"
    QCheck2.Gen.(pair (gen_regex ~boolean:true) (gen_regex ~boolean:true))
    (fun (r, s) -> Printf.sprintf "%s / %s" (R.to_string r) (R.to_string s))
    (fun (r, s) ->
      match (Eq.equiv ~max_pairs:20_000 r s, S.equiv ~budget:20_000 session r s) with
      | Some a, Some b -> a = b
      | None, _ | _, None -> QCheck2.assume_fail ())

let t_lang_equiv_counterexample =
  prop "equivalence counterexamples distinguish the languages"
    QCheck2.Gen.(pair (gen_regex ~boolean:true) (gen_regex ~boolean:true))
    (fun (r, s) -> Printf.sprintf "%s / %s" (R.to_string r) (R.to_string s))
    (fun (r, s) ->
      match Eq.check ~max_pairs:20_000 r s with
      | Some (Eq.Counterexample w) -> Ref.matches r w <> Ref.matches s w
      | Some Eq.Equivalent -> true
      | None -> QCheck2.assume_fail ())

let t_safa_vs_oracle =
  prop "SAFA acceptance = oracle (Propositions 8.2/8.3)"
    QCheck2.Gen.(pair (gen_regex ~boolean:true) gen_word)
    print_regex_word
    (fun (r, w) ->
      match Safa.of_sbfa_regex ~max_states:400 r with
      | None -> QCheck2.assume_fail ()
      | Some m -> Safa.accepts m w = Ref.matches r w)

let t_matcher_vs_oracle =
  prop "SRM-style matcher agrees with the oracle"
    QCheck2.Gen.(pair (gen_regex ~boolean:true) gen_word)
    print_regex_word
    (fun (r, w) ->
      let m = Matcher.create r in
      Matcher.matches m w = Ref.matches r w)

(* -- printer/parser ------------------------------------------------------ *)

let t_roundtrip =
  prop "print/parse roundtrip"
    (gen_regex ~boolean:true)
    print_regex
    (fun r ->
      (* ⊥ prints as "[]", which the parser deliberately rejects (an
         empty class in a real pattern is always a typo).  The smart
         constructors absorb ⊥ everywhere, so it only survives at the
         root. *)
      if R.equal r R.empty then
        match P.parse (R.to_string r) with
        | Ok _ -> QCheck2.Test.fail_report "empty class should not reparse"
        | Error _ -> true
      else
        match P.parse (R.to_string r) with
        | Ok r' -> R.equal r r'
        | Error (pos, msg) ->
          QCheck2.Test.fail_reportf "reparse failed at %d: %s for %s" pos msg
            (R.to_string r))

(* -- smart constructors are language-preserving -------------------------- *)

let t_smart_constructors =
  prop "smart constructor laws (languages)"
    QCheck2.Gen.(pair (gen_regex ~boolean:true) gen_word)
    print_regex_word
    (fun (r, w) ->
      let m x = Ref.matches x w in
      m (R.alt r R.empty) = m r
      && m (R.inter r R.full) = m r
      && m (R.compl (R.compl r)) = m r
      && m (R.concat R.eps r) = m r
      && m (R.star (R.star r)) = m (R.star r)
      && m (R.loop r 1 (Some 1)) = m r
      && m (R.alt r r) = m r)

(* -- reversal ------------------------------------------------------------ *)

let t_rev_involution =
  prop "rev is an involution"
    (gen_regex ~boolean:true)
    print_regex
    (fun r -> R.equal (R.rev (R.rev r)) r)

let t_rev_structural =
  prop "rev distributes over the constructors"
    QCheck2.Gen.(pair (gen_regex ~boolean:true) (gen_regex ~boolean:true))
    (fun (a, b) -> Printf.sprintf "%s / %s" (R.to_string a) (R.to_string b))
    (fun (a, b) ->
      R.equal (R.rev (R.concat a b)) (R.concat (R.rev b) (R.rev a))
      && R.equal (R.rev (R.alt a b)) (R.alt (R.rev a) (R.rev b))
      && R.equal (R.rev (R.inter a b)) (R.inter (R.rev a) (R.rev b))
      && R.equal (R.rev (R.compl a)) (R.compl (R.rev a))
      && R.equal (R.rev (R.star a)) (R.star (R.rev a))
      && R.equal (R.rev (R.loop a 2 (Some 3))) (R.loop (R.rev a) 2 (Some 3)))

let t_rev_language =
  prop "rev reverses the language"
    QCheck2.Gen.(pair (gen_regex ~boolean:true) gen_word)
    print_regex_word
    (fun (r, w) -> Ref.matches (R.rev r) (List.rev w) = Ref.matches r w)

(* The byte engine's [find] locates the minimal match start with a
   backward pass of the [⊤*·rev r] DFA.  Certify the span it reports
   against the string-reversal oracle: if [s.[i..j)] matches [r] then
   the mirrored slice of the reversed string must match [rev r]. *)
let t_rev_engine_backward =
  prop "engine backward-scan span vs string-reversal oracle"
    QCheck2.Gen.(pair (gen_regex ~boolean:true) gen_word)
    print_regex_word
    (fun (r, w) ->
      let module Eng = Sbd_engine.Search.Make (R) in
      let s = String.init (List.length w) (fun i -> Char.chr (List.nth w i)) in
      let eng = Eng.create ~mode:Sbd_engine.Byteclass.Byte r in
      let r' = R.rev r in
      let eng' = Eng.create ~mode:Sbd_engine.Byteclass.Byte r' in
      let s' = String.init (String.length s)
          (fun i -> s.[String.length s - 1 - i]) in
      let word_of str i j =
        List.init (j - i) (fun k -> Char.code str.[i + k])
      in
      let n = String.length s in
      (* a substring match exists iff one exists in the mirror *)
      (Eng.find eng s <> None) = (Eng.find eng' s' <> None)
      && (match Eng.find eng s with
         | None -> true
         | Some (i, j) ->
           (* the reported span really matches, and so does its mirror
              under the reversed pattern *)
           Ref.matches r (word_of s i j)
           && Ref.matches r' (word_of s' (n - j) (n - i)))
      && (match Eng.find eng' s' with
         | None -> true
         | Some (i, j) ->
           Ref.matches r' (word_of s' i j)
           && Ref.matches r (word_of s (n - j) (n - i))))

let suite =
  ( "properties",
    List.map QCheck_alcotest.to_alcotest
      [ t_deriv_vs_oracle; t_brz_vs_oracle; t_thm_4_3; t_lemma_4_2
      ; t_dnf_semantics; t_nnf_semantics; t_sbfa_accepts; t_thm_7_3
      ; t_solver_sound; t_solvers_agree; t_equiv_reflexive; t_bdd_vs_ranges
      ; t_minterms_partition; t_choose_sound; t_roundtrip
      ; t_smart_constructors; t_simplify_preserves; t_simplify_equiv_to_original
      ; t_lang_equiv_vs_solver; t_lang_equiv_counterexample
      ; t_matcher_vs_oracle; t_safa_vs_oracle
      ; t_rev_involution; t_rev_structural; t_rev_language
      ; t_rev_engine_backward ] )
