(* Tests for the eager symbolic-automata pipeline: NFA compilation,
   product, determinization, complement, and the two baseline solvers
   built on it. *)

module A = Sbd_alphabet.Bdd
module R = Sbd_regex.Regex.Make (A)
module P = Sbd_regex.Parser.Make (R)
module Nfa = Sbd_sfa.Nfa.Make (R)
module Eager = Sbd_sfa.Eager.Make (R)
module AntS = Sbd_sfa.Antimirov_solver.Make (R)
module Ref = Sbd_classic.Refmatch.Make (R)
module Min = Sbd_sfa.Minimize.Make (R)

let re = P.parse_exn
let check = Alcotest.(check bool)
let word s = List.init (String.length s) (fun i -> Char.code s.[i])

let accepts_fixtures =
  [ ("abc", "abc", true); ("abc", "abd", false); ("a*", "aaa", true)
  ; ("a*", "ab", false); ("(ab)*", "abab", true); ("(ab)*", "aab", false)
  ; ("a|bc", "bc", true); ("a|bc", "b", false)
  ; ("a{2,4}", "aaa", true); ("a{2,4}", "a", false); ("a{2,4}", "aaaaa", false)
  ; ("a{2,}", "aaaa", true); ("a?b", "b", true); ("a?b", "ab", true)
  ; ("[a-c]+\\d", "abc5", true); ("[a-c]+\\d", "5", false) ]

let test_nfa_accepts () =
  List.iter
    (fun (r, w, expected) ->
      let m = Nfa.of_re (re r) in
      check (Printf.sprintf "nfa %s on %S" r w) expected (Nfa.accepts m (word w)))
    accepts_fixtures

let test_nfa_matches_oracle () =
  (* NFA semantics equals the DP oracle on classical regexes *)
  let corpus = [ "(a|b)*abb"; "a{0,3}b{1,2}"; "(ab|ba)*"; "a*b*a*"; "\\d{2}-\\d{2}" ] in
  let alphabet = List.map Char.code [ 'a'; 'b'; '0'; '1'; '-' ] in
  let rec words n =
    if n = 0 then [ [] ]
    else
      [] :: List.concat_map (fun w -> List.map (fun c -> c :: w) alphabet) (words (n - 1))
  in
  List.iter
    (fun r ->
      let r = re r in
      let m = Nfa.of_re r in
      List.iter
        (fun w ->
          check "nfa = oracle" (Ref.matches r w) (Nfa.accepts m w))
        (words 4))
    corpus

let test_product () =
  let m1 = Nfa.of_re (re ".*a.*") and m2 = Nfa.of_re (re ".*b.*") in
  let p = Nfa.product m1 m2 in
  check "product accepts ab" true (Nfa.accepts p (word "ab"));
  check "product accepts ba" true (Nfa.accepts p (word "ba"));
  check "product rejects aa" false (Nfa.accepts p (word "aa"));
  check "product rejects empty" false (Nfa.accepts p [])

let test_determinize_complement () =
  let m = Nfa.of_re (re "(a|b)*ab") in
  let d = Nfa.determinize m in
  check "dfa accepts ab" true (Nfa.accepts d (word "ab"));
  check "dfa accepts aab" true (Nfa.accepts d (word "aab"));
  check "dfa rejects ba" false (Nfa.accepts d (word "ba"));
  let c = Nfa.complement m in
  check "complement rejects ab" false (Nfa.accepts c (word "ab"));
  check "complement accepts ba" true (Nfa.accepts c (word "ba"));
  check "complement accepts empty" true (Nfa.accepts c []);
  (* outside the ASCII sample too: BMP characters *)
  check "complement accepts CJK" true (Nfa.accepts c [ 0x4E2D ])

let test_determinization_blowup () =
  (* .*a.{k} determinizes to ~2^k states: the classical bottleneck *)
  let m = Nfa.of_re (re ".*a.{12}") in
  (match Nfa.determinize ~budget:1000 m with
  | exception Nfa.Blowup _ -> ()
  | d -> Alcotest.failf "expected blowup, got %d states" d.Nfa.num_states);
  (* small k fits *)
  let d = Nfa.determinize ~budget:1000 (Nfa.of_re (re ".*a.{5}")) in
  check "2^6 states at least" true (d.Nfa.num_states >= 64)

let test_eager_solver () =
  let sat = [ "abc"; "(ab)*"; ".*a.*&.*b.*"; "~(ab)"; "(.*a.{4})&(.*b.{3})" ] in
  let unsat =
    [ "a&~a"; "[a-c]&[x-z]"; "(.*a.{4})&(.*b.{4})"; "(ab)*&~((ab)*)"
    ; "a{2}&a{3}" ]
  in
  List.iter
    (fun s ->
      match Eager.solve (re s) with
      | Eager.Sat w ->
        check (Printf.sprintf "eager witness %s" s) true (Ref.matches (re s) w)
      | _ -> Alcotest.failf "eager: expected sat for %s" s)
    sat;
  List.iter
    (fun s ->
      match Eager.solve (re s) with
      | Eager.Unsat -> ()
      | _ -> Alcotest.failf "eager: expected unsat for %s" s)
    unsat

let test_eager_blowup () =
  match Eager.solve ~budget:2000 (re "~(.*a.{16})") with
  | Eager.Unknown _ -> ()
  | Eager.Sat _ -> Alcotest.fail "expected blowup for eager complement"
  | Eager.Unsat -> Alcotest.fail "wrong answer"

let test_antimirov_solver () =
  let sat =
    [ "abc"; ".*a.*&.*b.*"; "~(ab)"; ".*\\d.*&~(.*01.*)"; "(ab|ba){2}&.*aa.*" ]
  in
  let unsat = [ "[a-c]&[x-z]"; "(.*a.{4})&(.*b.{4})"; "a{2}&a{3}"; "(ab)*&~((ab)*)" ] in
  List.iter
    (fun s ->
      match AntS.solve (re s) with
      | AntS.Sat w ->
        check (Printf.sprintf "antimirov witness %s" s) true (Ref.matches (re s) w)
      | AntS.Unsat -> Alcotest.failf "antimirov: expected sat for %s" s
      | AntS.Unknown why -> Alcotest.failf "antimirov: unknown for %s (%s)" s why)
    sat;
  List.iter
    (fun s ->
      match AntS.solve (re s) with
      | AntS.Unsat -> ()
      | AntS.Sat _ -> Alcotest.failf "antimirov: expected unsat for %s" s
      | AntS.Unknown why -> Alcotest.failf "antimirov: unknown for %s (%s)" s why)
    unsat

let test_antimirov_unsupported () =
  (* nested Boolean structure is out of this baseline's fragment *)
  match AntS.solve (re "(~(ab)|c)d") with
  | AntS.Unknown _ -> ()
  | _ -> Alcotest.fail "expected unknown for nested Boolean structure"

let test_antimirov_complement_blowup () =
  (* complement of a loop-heavy regex forces eager determinization *)
  match AntS.solve ~budget:500 (re "~(.*a.{16})") with
  | AntS.Unknown _ -> ()
  | _ -> Alcotest.fail "expected blowup on complement elimination"

let test_minimize () =
  let alphabet = List.map Char.code [ 'a'; 'b'; 'c' ] in
  let rec words n =
    if n = 0 then [ [] ]
    else
      [] :: List.concat_map (fun w -> List.map (fun c -> c :: w) alphabet) (words (n - 1))
  in
  let ws = words 5 in
  let cases = [ "(a|b)*abb"; "a{0,3}"; ".*ab.*"; "(ab|ba)+"; "a*b*" ] in
  List.iter
    (fun pat ->
      let r = re pat in
      let dfa = Nfa.determinize (Nfa.of_re r) in
      let m = Min.minimize dfa in
      check (Printf.sprintf "%s: no growth" pat) true (m.Nfa.num_states <= dfa.Nfa.num_states);
      (* language preserved *)
      List.iter
        (fun w ->
          check (Printf.sprintf "%s minimized language" pat) (Ref.matches r w)
            (Nfa.accepts m w))
        ws;
      (* idempotent *)
      let m2 = Min.minimize m in
      Alcotest.(check int) (pat ^ ": idempotent") m.Nfa.num_states m2.Nfa.num_states)
    cases;
  (* (a|b)*abb: 4 live states plus the non-{a,b} sink *)
  let m = Min.minimize (Nfa.determinize (Nfa.of_re (re "(a|b)*abb"))) in
  Alcotest.(check int) "abb minimal size" 5 m.Nfa.num_states

let test_minimize_collapses_blowup () =
  (* .*a.{3} determinizes to ~2^4 states and that DFA is already minimal
     (the language genuinely needs the subsets); but union duplicates
     collapse: r|r determinizes to more states than r alone, minimize
     brings them back *)
  let r = re "(a|b)*abb" in
  let doubled = Nfa.union (Nfa.of_re r) (Nfa.of_re r) in
  let dfa = Nfa.determinize doubled in
  let m = Min.minimize dfa in
  Alcotest.(check int) "duplicates collapse" 5 m.Nfa.num_states

let suite =
  ( "sfa",
    [ Alcotest.test_case "nfa acceptance" `Quick test_nfa_accepts
    ; Alcotest.test_case "nfa = oracle" `Quick test_nfa_matches_oracle
    ; Alcotest.test_case "product" `Quick test_product
    ; Alcotest.test_case "determinize and complement" `Quick test_determinize_complement
    ; Alcotest.test_case "determinization blowup" `Quick test_determinization_blowup
    ; Alcotest.test_case "eager solver" `Quick test_eager_solver
    ; Alcotest.test_case "eager blowup" `Quick test_eager_blowup
    ; Alcotest.test_case "antimirov solver" `Quick test_antimirov_solver
    ; Alcotest.test_case "antimirov unsupported" `Quick test_antimirov_unsupported
    ; Alcotest.test_case "antimirov complement blowup" `Quick test_antimirov_complement_blowup
    ; Alcotest.test_case "minimization" `Quick test_minimize
    ; Alcotest.test_case "minimization collapses duplicates" `Quick
        test_minimize_collapses_blowup
    ] )
