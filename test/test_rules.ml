(* Tests for the Figure 3 rules as a single-step rewriting system:
   replaying the paper's derivations rule by rule, the bot rule through
   the persistent graph, and equivalence preservation of saturation. *)

module A = Sbd_alphabet.Bdd
module R = Sbd_regex.Regex.Make (A)
module P = Sbd_regex.Parser.Make (R)
module Rules = Sbd_solver.Rules.Make (R)
module Ref = Sbd_classic.Refmatch.Make (R)

let re = P.parse_exn
let check = Alcotest.(check bool)

let word s = Array.init (String.length s) (fun i -> Char.code s.[i])

(* -- individual rules ---------------------------------------------------- *)

let test_der_rule () =
  let g = Rules.G.create () in
  (* non-nullable regex: the empty-string branch vanishes *)
  let r = re ".*\\d.*&~(.*01.*)" in
  (match Rules.step g (Rules.In (0, r)) with
  | Some (Rules.FAnd [ Rules.FAtom (Rules.Lenpos 0); Rules.FAtom (Rules.In_tr (0, _)) ])
    -> ()
  | Some f -> Alcotest.failf "unexpected der result: %s" (Format.asprintf "%a" Rules.pp f)
  | None -> Alcotest.fail "der rule did not apply");
  (* the upd rule ran: r is now closed in the graph *)
  check "closed by upd" true (Rules.G.is_closed g r);
  (* nullable regex: the empty-string branch remains *)
  match Rules.step g (Rules.In (0, re "a*")) with
  | Some (Rules.FOr [ Rules.FAtom (Rules.Len0 0); _ ]) -> ()
  | Some f -> Alcotest.failf "unexpected der result: %s" (Format.asprintf "%a" Rules.pp f)
  | None -> Alcotest.fail "der rule did not apply"

let test_ite_rule () =
  let g = Rules.G.create () in
  let phi = A.of_ranges [ (Char.code '0', Char.code '0') ] in
  let t = Rules.Tr.raw_ite phi (Rules.Tr.leaf (re "1.*")) Rules.Tr.bot in
  match Rules.step g (Rules.In_tr (3, t)) with
  | Some
      (Rules.FOr
        [ Rules.FAnd [ Rules.FAtom (Rules.Char (3, p1)); Rules.FAtom (Rules.In_tr (3, _)) ]
        ; Rules.FAnd [ Rules.FAtom (Rules.Char (3, p2)); Rules.FAtom (Rules.In_tr (3, _)) ]
        ]) ->
    check "positive guard" true (A.equal p1 phi);
    check "negative guard" true (A.equal p2 (A.neg phi))
  | Some f -> Alcotest.failf "unexpected ite result: %s" (Format.asprintf "%a" Rules.pp f)
  | None -> Alcotest.fail "ite rule did not apply"

let test_or_and_ere_rules () =
  let g = Rules.G.create () in
  let t = Rules.Tr.raw_union (Rules.Tr.leaf (re "ab")) (Rules.Tr.leaf (re "cd")) in
  (match Rules.step g (Rules.In_tr (1, t)) with
  | Some (Rules.FOr [ Rules.FAtom (Rules.In_tr (1, _)); Rules.FAtom (Rules.In_tr (1, _)) ])
    -> ()
  | _ -> Alcotest.fail "or rule did not apply");
  (* ere: a leaf becomes membership of the next suffix *)
  (match Rules.step g (Rules.In_tr (1, Rules.Tr.leaf (re "ab"))) with
  | Some (Rules.FAtom (Rules.In (2, r))) -> check "same regex" true (R.equal r (re "ab"))
  | _ -> Alcotest.fail "ere rule did not apply");
  (* ere on bottom is false *)
  match Rules.step g (Rules.In_tr (1, Rules.Tr.bot)) with
  | Some Rules.FFalse -> ()
  | _ -> Alcotest.fail "ere on bottom should be false"

let test_no_rule_for_inter_compl () =
  (* Figure 3a has no propagation rules for & / ~ of transition regexes:
     propagating them separately would be incomplete (Section 5) *)
  let g = Rules.G.create () in
  let t = Rules.Tr.raw_inter (Rules.Tr.leaf (re ".*a")) (Rules.Tr.leaf (re ".*b")) in
  (match Rules.step g (Rules.In_tr (0, t)) with
  | None -> ()
  | Some _ -> Alcotest.fail "no rule should apply to a conjunction");
  match
    Rules.step g (Rules.In_tr (0, Rules.Tr.raw_compl (Rules.Tr.leaf (re "a"))))
  with
  | None -> ()
  | Some _ -> Alcotest.fail "no rule should apply to a complement"

let test_bot_rule () =
  let g = Rules.G.create () in
  let r = re "[a-c]&[x-z]" in
  (* first unfolding closes r with no successors *)
  (match Rules.step g (Rules.In (0, r)) with
  | Some f ->
    (* saturating the remainder yields false *)
    check "saturates to false" true (Rules.saturate g f = Rules.FFalse)
  | None -> Alcotest.fail "der did not apply");
  (* now r is provably dead: the bot rule answers directly *)
  check "dead in graph" true (Rules.G.is_dead g r);
  match Rules.step g (Rules.In (0, r)) with
  | Some Rules.FFalse -> ()
  | _ -> Alcotest.fail "bot rule did not fire"

(* -- the Section 2 derivation, rule by rule ------------------------------ *)

let test_section_2_replay () =
  let g = Rules.G.create () in
  let r = re ".*\\d.*&~(.*01.*)" in
  let r2 = re "~(.*01.*)" in
  let r3 = R.inter r2 (re "~(1.*)") in
  (* der: R is not nullable, so the case split reduces to the non-empty
     branch with delta_dnf(R) *)
  let inner =
    match Rules.step g (Rules.In (0, r)) with
    | Some (Rules.FAnd [ _; Rules.FAtom (Rules.In_tr (0, t)) ]) -> t
    | _ -> Alcotest.fail "unexpected der shape"
  in
  (* delta_dnf(R) ≡ if(0, R3, if(\d, R2, R)): check by applying ite
     steps and collecting the reachable leaf regexes *)
  let rec leaves t acc =
    match Rules.step g (Rules.In_tr (0, t)) with
    | Some f -> collect f acc
    | None -> acc
  and collect f acc =
    match f with
    | Rules.FAtom (Rules.In_tr (_, t)) -> leaves t acc
    | Rules.FAtom (Rules.In (_, r)) -> r :: acc
    | Rules.FAnd fs | Rules.FOr fs -> List.fold_left (fun acc f -> collect f acc) acc fs
    | _ -> acc
  in
  let reached = leaves inner [] in
  check "reaches R3" true (List.exists (R.equal r3) reached);
  check "reaches R2" true (List.exists (R.equal r2) reached);
  check "reaches R" true (List.exists (R.equal r) reached);
  (* R3 is nullable: one more der step can accept the empty suffix,
     witnessing the model "0" of Section 2 *)
  match Rules.step g (Rules.In (1, r3)) with
  | Some (Rules.FOr (Rules.FAtom (Rules.Len0 1) :: _)) -> ()
  | Some f -> Alcotest.failf "unexpected: %s" (Format.asprintf "%a" Rules.pp f)
  | None -> Alcotest.fail "der on R3 did not apply"

(* -- saturation preserves semantics --------------------------------------- *)

let test_saturation_equivalence () =
  let g = Rules.G.create () in
  let regexes =
    [ "ab|cd"; "a*b"; ".*\\d.*&~(.*01.*)"; "~(ab)"; "(a|b){2}&~(aa)" ]
  in
  let words = [ ""; "a"; "ab"; "cd"; "0"; "01"; "10"; "aa"; "ba"; "a5b0" ] in
  List.iter
    (fun pat ->
      let r = re pat in
      let saturated = Rules.saturate ~fuel:16 g (Rules.FAtom (Rules.In (0, r))) in
      List.iter
        (fun w ->
          let arr = word w in
          check
            (Printf.sprintf "saturate %s on %S" pat w)
            (Ref.matches r (Array.to_list arr))
            (Rules.eval arr saturated))
        words)
    regexes

let suite =
  ( "rules",
    [ Alcotest.test_case "der rule" `Quick test_der_rule
    ; Alcotest.test_case "ite rule" `Quick test_ite_rule
    ; Alcotest.test_case "or and ere rules" `Quick test_or_and_ere_rules
    ; Alcotest.test_case "no rule for & / ~" `Quick test_no_rule_for_inter_compl
    ; Alcotest.test_case "bot rule" `Quick test_bot_rule
    ; Alcotest.test_case "Section 2 replay" `Quick test_section_2_replay
    ; Alcotest.test_case "saturation preserves semantics" `Quick
        test_saturation_equivalence ] )
