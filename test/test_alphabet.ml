(* Tests for the effective Boolean algebras: the interval-list algebra, the
   BDD algebra, their agreement, and minterm generation. *)

open Sbd_alphabet

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ranges_testable =
  Alcotest.testable
    (fun ppf rs ->
      Format.fprintf ppf "[%a]"
        (Format.pp_print_list (fun ppf (a, b) -> Format.fprintf ppf "(%d,%d)" a b))
        rs)
    ( = )

(* -- range-list helpers ------------------------------------------------ *)

let test_normalize () =
  Alcotest.check ranges_testable "merge overlapping"
    [ (1, 10) ]
    (Algebra.normalize_ranges [ (5, 10); (1, 6) ]);
  Alcotest.check ranges_testable "merge adjacent"
    [ (1, 10) ]
    (Algebra.normalize_ranges [ (1, 5); (6, 10) ]);
  Alcotest.check ranges_testable "keep gaps"
    [ (1, 5); (7, 10) ]
    (Algebra.normalize_ranges [ (7, 10); (1, 5) ]);
  Alcotest.check ranges_testable "drop empty" []
    (Algebra.normalize_ranges [ (5, 4) ]);
  Alcotest.check ranges_testable "clamp to domain"
    [ (0, 10) ]
    (Algebra.normalize_ranges [ (-5, 10) ])

let test_complement () =
  Alcotest.check ranges_testable "complement of middle range"
    [ (0, 9); (21, Algebra.max_char) ]
    (Algebra.complement_ranges [ (10, 20) ]);
  Alcotest.check ranges_testable "complement of empty"
    [ (0, Algebra.max_char) ]
    (Algebra.complement_ranges []);
  Alcotest.check ranges_testable "complement of full" []
    (Algebra.complement_ranges [ (0, Algebra.max_char) ])

let test_inter () =
  Alcotest.check ranges_testable "overlap"
    [ (5, 10) ]
    (Algebra.inter_ranges [ (1, 10) ] [ (5, 20) ]);
  Alcotest.check ranges_testable "disjoint" []
    (Algebra.inter_ranges [ (1, 4) ] [ (5, 20) ]);
  Alcotest.check ranges_testable "multi"
    [ (2, 3); (8, 9) ]
    (Algebra.inter_ranges [ (2, 3); (8, 9) ] [ (0, 20) ])

(* -- per-algebra law tests, shared via a functor ----------------------- *)

module Laws (A : Algebra.S) = struct
  let digit = A.of_ranges Charclass.digit_ranges
  let lower = A.of_ranges Charclass.lower_ranges
  let word = A.of_ranges Charclass.word_ranges

  let sample_points =
    [ 0; 1; Char.code '0'; Char.code '5'; Char.code '9'; Char.code 'a'
    ; Char.code 'z'; Char.code 'A'; Char.code '_'; 0x7F; 0x100; 0x4E2D
    ; Algebra.max_char ]

  let agree msg p q =
    List.iter
      (fun c -> check (Printf.sprintf "%s (char %d)" msg c) (A.mem c p) (A.mem c q))
      sample_points

  let test_bounds () =
    check "bot is bot" true (A.is_bot A.bot);
    check "top is top" true (A.is_top A.top);
    check "digit not bot" false (A.is_bot digit);
    List.iter (fun c -> check "mem top" true (A.mem c A.top)) sample_points;
    List.iter (fun c -> check "mem bot" false (A.mem c A.bot)) sample_points

  let test_ops () =
    check "digit /\\ lower unsat" true (A.is_bot (A.conj digit lower));
    check "digit <= word" true (A.is_bot (A.conj digit (A.neg word)));
    agree "de morgan" (A.neg (A.disj digit lower)) (A.conj (A.neg digit) (A.neg lower));
    agree "involution" digit (A.neg (A.neg digit));
    check "extensional: a|b = b|a" true
      (A.equal (A.disj digit lower) (A.disj lower digit));
    check "a /\\ ~a = bot" true (A.is_bot (A.conj digit (A.neg digit)));
    check "a \\/ ~a = top" true (A.is_top (A.disj digit (A.neg digit)))

  let test_sizes () =
    check_int "digits" 10 (A.size digit);
    check_int "lower" 26 (A.size lower);
    check_int "top" 0x10000 (A.size A.top);
    check_int "bot" 0 (A.size A.bot)

  let test_choose () =
    (match A.choose digit with
    | Some c -> check "witness in denotation" true (A.mem c digit)
    | None -> Alcotest.fail "no witness for digit");
    check "no witness for bot" true (A.choose A.bot = None);
    (* The witness is biased to printable ASCII when possible. *)
    (match A.choose A.top with
    | Some c -> check "printable witness" true (c >= 0x20 && c <= 0x7E)
    | None -> Alcotest.fail "no witness for top")

  let test_ranges_roundtrip () =
    let cases =
      [ Charclass.digit_ranges; Charclass.word_ranges; Charclass.space_ranges
      ; [ (0, 0) ]; [ (Algebra.max_char, Algebra.max_char) ]
      ; [ (0x41, 0x5A); (0x61, 0x7A) ] ]
    in
    List.iter
      (fun rs ->
        let normalized = Algebra.normalize_ranges rs in
        Alcotest.check ranges_testable "of_ranges/ranges roundtrip" normalized
          (A.ranges (A.of_ranges rs)))
      cases

  let tests name =
    [ Alcotest.test_case (name ^ " bounds") `Quick test_bounds
    ; Alcotest.test_case (name ^ " operations") `Quick test_ops
    ; Alcotest.test_case (name ^ " sizes") `Quick test_sizes
    ; Alcotest.test_case (name ^ " choose") `Quick test_choose
    ; Alcotest.test_case (name ^ " ranges roundtrip") `Quick test_ranges_roundtrip
    ]
end

module Ranges_laws = Laws (Ranges)
module Bdd_laws = Laws (Bdd)

(* -- BDD vs ranges agreement ------------------------------------------- *)

let random_ranges rand =
  let n = 1 + Random.State.int rand 4 in
  List.init n (fun _ ->
      let lo = Random.State.int rand 0x10000 in
      let hi = min Algebra.max_char (lo + Random.State.int rand 300) in
      (lo, hi))

let test_bdd_matches_ranges () =
  let rand = Random.State.make [| 42 |] in
  for _ = 1 to 200 do
    let rs1 = random_ranges rand and rs2 = random_ranges rand in
    let b1 = Bdd.of_ranges rs1 and b2 = Bdd.of_ranges rs2 in
    let r1 = Ranges.of_ranges rs1 and r2 = Ranges.of_ranges rs2 in
    let pairs =
      [ (Bdd.conj b1 b2, Ranges.conj r1 r2)
      ; (Bdd.disj b1 b2, Ranges.disj r1 r2)
      ; (Bdd.neg b1, Ranges.neg r1) ]
    in
    List.iter
      (fun (b, r) ->
        Alcotest.check ranges_testable "bdd op = ranges op" (Ranges.ranges r)
          (Bdd.ranges b);
        check_int "sizes agree" (Ranges.size r) (Bdd.size b))
      pairs
  done

(* -- minterms ----------------------------------------------------------- *)

module M = Minterm.Make (Bdd)

let test_minterms_partition () =
  let preds =
    List.map Bdd.of_ranges
      [ Charclass.digit_ranges; Charclass.lower_ranges; Charclass.word_ranges ]
  in
  let mts = M.minterms preds in
  (* Pairwise disjoint. *)
  List.iteri
    (fun i p ->
      List.iteri
        (fun j q -> if i < j then check "disjoint" true (Bdd.is_bot (Bdd.conj p q)))
        mts)
    mts;
  (* Cover the domain. *)
  let union = List.fold_left Bdd.disj Bdd.bot mts in
  check "covers domain" true (Bdd.is_top union);
  (* All satisfiable. *)
  List.iter (fun p -> check "satisfiable" false (Bdd.is_bot p)) mts;
  check "at most 2^n" true (List.length mts <= 8)

let test_minterms_empty () =
  match M.minterms [] with
  | [ p ] -> check "single top minterm" true (Bdd.is_top p)
  | _ -> Alcotest.fail "expected exactly one minterm"

let test_minterm_of () =
  let preds = List.map Bdd.of_ranges [ Charclass.digit_ranges; Charclass.word_ranges ] in
  let m = M.minterm_of preds (Char.code '7') in
  check "contains the char" true (Bdd.mem (Char.code '7') m);
  check "inside digit" true (Bdd.is_bot (Bdd.conj m (Bdd.neg (List.hd preds))))

let test_minterms_blowup_count () =
  (* n pairwise-overlapping predicates can give 2^n minterms: witness the
     exponential behaviour the paper's Section 8.3 baselines suffer from. *)
  let bit i = Bdd.of_ranges (List.init 128 (fun c -> if c land (1 lsl i) <> 0 then (c, c) else (-1, -2))) in
  let preds = List.init 5 bit in
  let mts = M.minterms preds in
  (* 2^5 minterms within [0,127] plus the rest of the BMP merged in. *)
  check "exponential minterms" true (List.length mts >= 32)

(* BDD structural edge cases *)
let test_bdd_edges () =
  let module B = Bdd in
  (* single-point predicates at the domain extremes *)
  let zero = B.of_ranges [ (0, 0) ] in
  let top_cp = B.of_ranges [ (Algebra.max_char, Algebra.max_char) ] in
  check "mem 0" true (B.mem 0 zero);
  check "not mem 1" false (B.mem 1 zero);
  check "mem max" true (B.mem Algebra.max_char top_cp);
  check_int "size 1" 1 (B.size zero);
  (* alternating bit pattern: worst case for the range view *)
  let evens = B.of_ranges (List.init 128 (fun i -> (2 * i, 2 * i))) in
  check_int "128 evens" 128 (B.size evens);
  check "mem 4" true (B.mem 4 evens);
  check "not mem 5" false (B.mem 5 evens);
  Alcotest.(check int) "ranges count" 128 (List.length (B.ranges evens));
  (* hash-consing: equal denotations are physically equal *)
  let a = B.of_ranges [ (10, 20) ] and b = B.of_ranges [ (10, 15); (16, 20) ] in
  check "hash-consed equal" true (B.equal a b);
  check "xor-style identity" true
    (B.is_bot (B.conj (B.disj a (B.neg a)) B.bot))

let test_utf8_boundaries () =
  (* encode/decode exactly at the 1/2/3-byte boundaries *)
  List.iter
    (fun cp ->
      match Utf8.decode (Utf8.encode [ cp ]) with
      | Ok [ cp' ] -> check_int "boundary roundtrip" cp cp'
      | _ -> Alcotest.failf "failed at U+%04X" cp)
    [ 0x00; 0x7F; 0x80; 0x7FF; 0x800; 0xD7FF; 0xE000; 0xFFFF ]

let test_charclass_wellformed () =
  (* Every named class denotes a nonempty set of well-ordered BMP
     ranges: lo <= hi within each range, all within 0..0xFFFF.  The
     parser relies on classes never being the (rejected) empty class. *)
  List.iter
    (fun cls ->
      let rs = Charclass.ranges_of cls in
      check "class nonempty" false (rs = []);
      List.iter
        (fun (lo, hi) ->
          check "range ordered" true (lo <= hi);
          check "range in BMP" true (lo >= 0 && hi <= 0xFFFF))
        rs;
      (* and survives normalization nonempty *)
      check "normalized nonempty" false
        (Sbd_alphabet.Algebra.normalize_ranges rs = []))
    Charclass.
      [ Digit; Word; Space; Lower; Upper; Alpha; Alnum; Ascii; Printable; Any ]

let suite =
  ( "alphabet",
    [ Alcotest.test_case "normalize_ranges" `Quick test_normalize
    ; Alcotest.test_case "complement_ranges" `Quick test_complement
    ; Alcotest.test_case "inter_ranges" `Quick test_inter ]
    @ Ranges_laws.tests "ranges"
    @ Bdd_laws.tests "bdd"
    @ [ Alcotest.test_case "bdd agrees with ranges" `Quick test_bdd_matches_ranges
      ; Alcotest.test_case "minterms partition" `Quick test_minterms_partition
      ; Alcotest.test_case "minterms of empty set" `Quick test_minterms_empty
      ; Alcotest.test_case "minterm_of" `Quick test_minterm_of
      ; Alcotest.test_case "minterm blowup" `Quick test_minterms_blowup_count
      ; Alcotest.test_case "bdd edge cases" `Quick test_bdd_edges
      ; Alcotest.test_case "utf8 boundaries" `Quick test_utf8_boundaries
      ; Alcotest.test_case "charclass well-formed" `Quick
          test_charclass_wellformed ] )
