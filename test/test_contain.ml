(* Tests for lib/contain: the coinductive containment/equivalence prover.
   Covers order properties (reflexivity, transitivity, antisymmetry up to
   equivalence), textbook inclusions, Boolean lattice facts, witness
   validity against the reference matcher, agreement with the
   [is_empty (r & ~s)] reduction, and budget exhaustion soundness. *)

module A = Sbd_alphabet.Bdd
module R = Sbd_regex.Regex.Make (A)
module P = Sbd_regex.Parser.Make (R)
module C = Sbd_contain.Contain.Make (R)
module S = Sbd_solver.Solve.Make (R)
module Ref = Sbd_classic.Refmatch.Make (R)

let re = P.parse_exn
let session = C.create_session ()
let ssession = S.create_session ()

let subset r s = C.subset session (re r) (re s)
let equiv r s = C.equiv session (re r) (re s)

let expect_proved what = function
  | C.Proved -> ()
  | C.Refuted w ->
    Alcotest.failf "%s: expected proved, refuted by %s" what
      (String.concat ";" (List.map string_of_int w))
  | C.Unknown why -> Alcotest.failf "%s: expected proved, got unknown (%s)" what why

let expect_refuted what = function
  | C.Refuted _ -> ()
  | C.Proved -> Alcotest.failf "%s: expected refuted, got proved" what
  | C.Unknown why ->
    Alcotest.failf "%s: expected refuted, got unknown (%s)" what why

let test_reflexive () =
  List.iter
    (fun p ->
      expect_proved (p ^ " ⊑ itself") (subset p p);
      expect_proved (p ^ " ≡ itself") (equiv p p))
    [ "a"; "(ab)*"; "a{2,5}|b+"; "~(ab)&.*c"; "[a-z]+\\d{2}" ]

let test_textbook_pairs () =
  expect_proved "(ab)*a ⊑ a(ba)*" (subset "(ab)*a" "a(ba)*");
  expect_proved "a(ba)* ⊑ (ab)*a" (subset "a(ba)*" "(ab)*a");
  expect_proved "(ab)*a ≡ a(ba)*" (equiv "(ab)*a" "a(ba)*");
  expect_proved "a{2,3} ⊑ a{1,4}" (subset "a{2,3}" "a{1,4}");
  expect_refuted "a{1,4} ⊑ a{2,3}" (subset "a{1,4}" "a{2,3}");
  expect_proved "a* ≡ (a|aa)*" (equiv "a*" "(a|aa)*");
  expect_proved "(a|b)* ≡ (a*b*)*" (equiv "(a|b)*" "(a*b*)*");
  expect_refuted "(ab)* ⊑ (ba)*" (subset "(ab)*" "(ba)*");
  expect_proved "abc ⊑ [a-z]+" (subset "abc" "[a-z]+");
  expect_refuted "[a-z]+ ⊑ abc" (subset "[a-z]+" "abc")

let test_boolean_lattice () =
  (* r&s ⊑ r ⊑ r|s for assorted r, s *)
  List.iter
    (fun (r, s) ->
      let both = Printf.sprintf "(%s)&(%s)" r s in
      let either = Printf.sprintf "(%s)|(%s)" r s in
      expect_proved (both ^ " ⊑ " ^ r) (subset both r);
      expect_proved (r ^ " ⊑ " ^ either) (subset r either);
      expect_proved (both ^ " ⊑ " ^ either) (subset both either))
    [ ("(ab)*", "a.*"); ("[a-m]+", "[h-z]+"); ("a{2,7}", "a*b?") ];
  (* complement flips containment *)
  expect_proved "~(.*) ⊑ anything" (subset "~(.*)&." "xyz");
  expect_proved "r ⊑ .*" (subset "(a|bc)+" ".*")

let test_transitivity_antisymmetry () =
  (* a{3,4} ⊑ a{2,5} ⊑ a{1,6}: check the composed edge too *)
  expect_proved "a{3,4} ⊑ a{2,5}" (subset "a{3,4}" "a{2,5}");
  expect_proved "a{2,5} ⊑ a{1,6}" (subset "a{2,5}" "a{1,6}");
  expect_proved "a{3,4} ⊑ a{1,6}" (subset "a{3,4}" "a{1,6}");
  (* mutual containment coincides with equivalence *)
  let r = "(a|b)*abb"
  and s = "(a|b)*abb&.*" in
  expect_proved "r ⊑ s" (subset r s);
  expect_proved "s ⊑ r" (subset s r);
  expect_proved "r ≡ s" (equiv r s)

let test_equiv_order_canonical () =
  (* equiv is symmetric; both argument orders must give one verdict *)
  let check_pair r s =
    let v1 = C.string_of_verdict (equiv r s)
    and v2 = C.string_of_verdict (equiv s r) in
    Alcotest.(check string) (r ^ " ≡ " ^ s ^ " symmetric") v1 v2
  in
  check_pair "(ab)*a" "a(ba)*";
  check_pair "a{1,4}" "a{2,3}";
  check_pair "[a-z]+" "[a-y]+|.*z.*&[a-z]+"

let test_witness_valid () =
  (* every refutation witness is in L(r) \ L(s), per the reference
     matcher (independent of the derivative engine) *)
  List.iter
    (fun (r, s) ->
      match subset r s with
      | C.Refuted w ->
        Alcotest.(check bool) (r ^ " accepts witness") true (Ref.matches (re r) w);
        Alcotest.(check bool) (s ^ " rejects witness") false (Ref.matches (re s) w)
      | C.Proved -> Alcotest.failf "%s ⊑ %s: expected refuted" r s
      | C.Unknown why -> Alcotest.failf "%s ⊑ %s: unknown (%s)" r s why)
    [ ("a{1,4}", "a{2,3}");
      ("(ab)*", "(ba)*");
      ("[a-z]+", "[a-m]+");
      (".*ab.*", ".*ba.*");
      ("a*b", "a+b") ]

let test_agrees_with_reduction () =
  (* the dedicated prover and the emptiness reduction
     is_empty (r & ~s) must agree wherever both decide *)
  let pairs =
    [ ("(ab)*a", "a(ba)*"); ("a{2,3}", "a{1,4}"); ("a{1,4}", "a{2,3}");
      ("(a|b)*", "(a*b*)*"); ("[a-z]+", "abc"); ("~(ab)", ".*");
      ("a*b*", "(a|b)*"); ("(a|b)*", "a*b*"); (".*a.*&.*b.*", ".*a.*") ]
  in
  List.iter
    (fun (rs, ss) ->
      let r = re rs and s = re ss in
      let direct = C.subset session r s in
      let reduction = S.solve ssession (R.inter r (R.compl s)) in
      match (direct, reduction) with
      | C.Proved, S.Sat w ->
        Alcotest.failf "%s ⊑ %s: prover says proved, reduction found %S" rs ss
          (S.string_of_witness w)
      | C.Refuted _, S.Unsat ->
        Alcotest.failf "%s ⊑ %s: prover says refuted, reduction says empty" rs ss
      | _ -> ())
    pairs

let test_budget_unknown_never_wrong () =
  (* with a tiny budget the only acceptable degradation is Unknown *)
  let hard_r = "(a|b){10,20}(c|d){5,15}"
  and hard_s = "(a|b|c|d){1,40}" in
  (match C.subset session ~budget:3 (re hard_r) (re hard_s) with
  | C.Unknown _ -> ()
  | C.Proved ->
    (* budget 3 could legitimately suffice only if memoized from an
       earlier query in this suite; a fresh session must say Unknown *)
    let fresh = C.create_session () in
    (match C.subset fresh ~budget:3 (re hard_r) (re hard_s) with
    | C.Unknown _ | C.Proved -> ()  (* proved within 3 only if truly tiny *)
    | C.Refuted _ -> Alcotest.fail "budget-3 refutation of a true inclusion")
  | C.Refuted _ -> Alcotest.fail "budget-3 refutation of a true inclusion");
  (* deadline exhaustion likewise yields Unknown, not a guess *)
  let dl = Sbd_obs.Obs.Deadline.make ~nodes:1 () in
  Sbd_obs.Obs.Deadline.charge dl 2;
  match C.subset (C.create_session ()) ~deadline:dl (re "(ab)*a") (re "a(ba)*") with
  | C.Unknown _ | C.Proved -> ()
  | C.Refuted _ -> Alcotest.fail "expired deadline produced a refutation"

let test_memo_reuse () =
  let s = C.create_session () in
  let r1 = re "(ab)*a" and r2 = re "a(ba)*" in
  expect_proved "first query" (C.subset s r1 r2);
  let entries = C.memo_entries s in
  Alcotest.(check bool) "memo populated" true (entries > 0);
  expect_proved "second query (memoized)" (C.subset s r1 r2);
  let stats = C.session_stats s in
  let get k = List.assoc k stats in
  Alcotest.(check bool) "two queries recorded" true (get "contain.queries" = 2.0);
  C.clear s;
  Alcotest.(check int) "clear empties memo" 0 (C.memo_entries s)

let suite =
  ( "contain",
    [ Alcotest.test_case "reflexivity" `Quick test_reflexive;
      Alcotest.test_case "textbook pairs" `Quick test_textbook_pairs;
      Alcotest.test_case "boolean lattice" `Quick test_boolean_lattice;
      Alcotest.test_case "transitivity/antisymmetry" `Quick
        test_transitivity_antisymmetry;
      Alcotest.test_case "equiv order-canonical" `Quick test_equiv_order_canonical;
      Alcotest.test_case "witness validity" `Quick test_witness_valid;
      Alcotest.test_case "agrees with reduction" `Quick test_agrees_with_reduction;
      Alcotest.test_case "budget exhaustion sound" `Quick
        test_budget_unknown_never_wrong;
      Alcotest.test_case "memo reuse" `Quick test_memo_reuse ] )
