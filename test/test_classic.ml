(* Tests for the classical machinery: the DP reference matcher itself,
   Brzozowski derivatives, Antimirov partial derivatives, and the
   mintermization-based baseline solver. *)

module A = Sbd_alphabet.Bdd
module R = Sbd_regex.Regex.Make (A)
module P = Sbd_regex.Parser.Make (R)
module Ref = Sbd_classic.Refmatch.Make (R)
module Brz = Sbd_classic.Brzozowski.Make (R)
module Ant = Sbd_classic.Antimirov.Make (R)
module MSolve = Sbd_classic.Minterm_solver.Make (R)
module D = Sbd_core.Deriv.Make (R)

let re = P.parse_exn
let check = Alcotest.(check bool)

let word s = List.init (String.length s) (fun i -> Char.code s.[i])

(* Hand-labelled (regex, word, expected) fixtures; every engine must agree. *)
let fixtures =
  [ ("abc", "abc", true); ("abc", "ab", false); ("abc", "abcd", false)
  ; ("a*", "", true); ("a*", "aaaa", true); ("a*", "aab", false)
  ; ("(ab)*", "abab", true); ("(ab)*", "aba", false)
  ; ("a|b", "a", true); ("a|b", "b", true); ("a|b", "c", false)
  ; ("a{2,3}", "a", false); ("a{2,3}", "aa", true); ("a{2,3}", "aaa", true)
  ; ("a{2,3}", "aaaa", false); ("a{2,}", "aaaaa", true); ("a{0,2}", "", true)
  ; ("(a?){3}", "aa", true); ("(a?){3}", "aaaa", false)
  ; (".*ab.*", "xxabyy", true); (".*ab.*", "xxayy", false)
  ; ("\\d+", "0571", true); ("\\d+", "05a71", false)
  ; ("[a-c]x[0-9]", "bx7", true); ("[a-c]x[0-9]", "dx7", false)
  ; ("a*b*", "aabb", true); ("a*b*", "aba", false)
  ]

let ere_fixtures =
  [ ("a*&b*", "", true); ("a*&b*", "a", false)
  ; (".*a.*&.*b.*", "ab", true); (".*a.*&.*b.*", "aa", false)
  ; ("~(ab)", "", true); ("~(ab)", "ab", false); ("~(ab)", "abc", true)
  ; ("~(a*)", "b", true); ("~(a*)", "aa", false)
  ; (".*\\d.*&~(.*01.*)", "0", true); (".*\\d.*&~(.*01.*)", "01", false)
  ; (".*\\d.*&~(.*01.*)", "10", true); (".*\\d.*&~(.*01.*)", "xyz", false)
  ; ("(a|b)*&~(.*aa.*)", "abab", true); ("(a|b)*&~(.*aa.*)", "abaa", false)
  ; ("~(~a&~b)", "a", true); ("~(~a&~b)", "c", false)
  ]

let test_refmatch () =
  List.iter
    (fun (r, w, expected) ->
      check (Printf.sprintf "ref %s on %S" r w) expected (Ref.matches (re r) (word w)))
    (fixtures @ ere_fixtures)

let test_brzozowski_matches () =
  List.iter
    (fun (r, w, expected) ->
      check (Printf.sprintf "brz %s on %S" r w) expected (Brz.matches (re r) (word w)))
    (fixtures @ ere_fixtures)

let test_antimirov_matches () =
  (* classical partial derivatives: RE fixtures only *)
  List.iter
    (fun (r, w, expected) ->
      check (Printf.sprintf "ant %s on %S" r w) expected (Ant.matches (re r) (word w)))
    fixtures

let test_antimirov_pos () =
  (* positive ERE fragment *)
  let pos = List.filter (fun (r, _, _) -> not (String.contains r '~')) ere_fixtures in
  List.iter
    (fun (r, w, expected) ->
      check
        (Printf.sprintf "ant+ %s on %S" r w)
        expected
        (Ant.matches_pos (re r) (word w)))
    (fixtures @ pos)

let test_antimirov_unsupported () =
  (try
     ignore (Ant.partial (Char.code 'a') (re "~(ab)"));
     Alcotest.fail "expected Unsupported"
   with Ant.Unsupported _ -> ());
  try
    ignore (Ant.partial_pos (Char.code 'a') (re "a&~b"));
    Alcotest.fail "expected Unsupported"
  with Ant.Unsupported _ -> ()

let test_antimirov_linear () =
  (* Antimirov: number of partial derivatives of a union is bounded by the
     sum, no product blowup on RE *)
  let r = re "(ab|cd|ef)*" in
  let d = Ant.partial (Char.code 'a') r in
  Alcotest.(check int) "single partial derivative" 1 (R.Set.cardinal d)

let test_minterm_solver () =
  let sat = [ "abc"; "a*&~b"; ".*\\d.*&~(.*01.*)"; "(ab|ba){2}" ] in
  let unsat = [ "a&~a"; "[a-c]&[x-z]"; "a{2}&a{3}"; "(a*)&(.*b.*)" ] in
  List.iter
    (fun s ->
      match MSolve.solve (re s) with
      | MSolve.Sat w ->
        check (Printf.sprintf "minterm witness for %s" s) true (Ref.matches (re s) w)
      | _ -> Alcotest.failf "minterm solver: expected sat for %s" s)
    sat;
  List.iter
    (fun s ->
      match MSolve.solve (re s) with
      | MSolve.Unsat -> ()
      | _ -> Alcotest.failf "minterm solver: expected unsat for %s" s)
    unsat

let test_engines_agree () =
  (* all matching engines agree on all fixtures *)
  List.iter
    (fun (r, w, _) ->
      let r = re r and w = word w in
      let reference = Ref.matches r w in
      check "brz agrees" reference (Brz.matches r w);
      check "deriv agrees" reference (D.matches r w))
    (fixtures @ ere_fixtures)

let test_language_enumeration () =
  let ab = [ Char.code 'a'; Char.code 'b' ] in
  let lang r = Ref.language ~alphabet:ab ~max_len:4 (re r) in
  Alcotest.(check int) "(a|b){2} has 4 words" 4 (List.length (lang "(a|b){2}"));
  Alcotest.(check int) "a* words up to 4" 5 (List.length (lang "a*"));
  (* 2^0+...+2^4 = 31 words total, 5 of which are a^k with 0 <= k <= 4 *)
  Alcotest.(check int) "~(a*) over {a,b} up to len 4" 26 (List.length (lang "~(a*)"))

let suite =
  ( "classic",
    [ Alcotest.test_case "reference matcher" `Quick test_refmatch
    ; Alcotest.test_case "brzozowski matcher" `Quick test_brzozowski_matches
    ; Alcotest.test_case "antimirov matcher" `Quick test_antimirov_matches
    ; Alcotest.test_case "antimirov positive ERE" `Quick test_antimirov_pos
    ; Alcotest.test_case "antimirov unsupported" `Quick test_antimirov_unsupported
    ; Alcotest.test_case "antimirov granularity" `Quick test_antimirov_linear
    ; Alcotest.test_case "minterm solver" `Quick test_minterm_solver
    ; Alcotest.test_case "engines agree" `Quick test_engines_agree
    ; Alcotest.test_case "language enumeration" `Quick test_language_enumeration ] )
