(* Tests for the static analyzer (lib/analysis): Layer-1 metrics and
   fragment classification, lint rules with stable IDs, Layer-2 bounded
   semantic verdicts (which must be sound: Proved/Refuted are theorems),
   the tuning hints and their consumers (matcher/engine), and the
   stability of the JSON report shape. *)

module A = Sbd_alphabet.Bdd
module R = Sbd_regex.Regex.Make (A)
module P = Sbd_regex.Parser.Make (R)
module An = Sbd_analysis.Analyze.Make (R)
module Ref = Sbd_classic.Refmatch.Make (R)
module Matcher = Sbd_matcher.Matcher.Make (R)
module J = Sbd_obs.Obs.Json

let re = P.parse_exn
let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let has_rule rule (rep : An.report) =
  List.exists (fun (f : An.finding) -> f.An.rule = rule) rep.An.findings

let rules (rep : An.report) =
  List.map (fun (f : An.finding) -> f.An.rule) rep.An.findings

(* -- Layer 1: metrics and fragments ---------------------------------- *)

let test_metrics () =
  let m = An.metrics_of (re "ab*c") in
  check_str "fragment" "RE" (An.fragment_name m.An.fragment);
  check_int "preds" 3 m.An.n_pred;
  check "has star" true (m.An.star_height = 1);
  check_int "no complement" 0 m.An.compl_depth;
  check "ascii only" true m.An.ascii_only;
  check "not nullable" false m.An.nullable;
  (* Theorem 7.3: the linear bound is recorded for classical regexes *)
  (match m.An.state_bound with
  | Some b -> check "state bound positive" true (b >= 2)
  | None -> Alcotest.fail "RE fragment must carry a state bound");
  (* top-level Boolean structure over classical regexes stays in B(RE) *)
  let mb = An.metrics_of (re "~(.*a{8,16}.*)&.*b.*") in
  check_str "boolean fragment" "B(RE)" (An.fragment_name mb.An.fragment);
  check "boolean keeps bound" true (mb.An.state_bound <> None);
  check "counter under complement" true mb.An.counter_under_compl;
  (* Boolean structure under a concatenation leaves the bounded fragment *)
  let mext = An.metrics_of (re "(~(ab)|c)d") in
  check_str "general fragment" "ERE" (An.fragment_name mext.An.fragment);
  check "no bound for ERE" true (mext.An.state_bound = None);
  (* the unfolding measure counts counted repetitions multiplied out *)
  let munf = An.metrics_of (re "a{100}") in
  check "unfolded >= 100" true (munf.An.unfolded >= 100);
  (* difficulty is monotone in obvious hardness: blowup > literal *)
  check "difficulty orders patterns" true
    (An.difficulty mb > An.difficulty m)

let test_lint_rules () =
  let analyze ?source s = An.analyze ?source ~layer2:false (re s) in
  (* SBD101: syntactic bottom at the root (constructors collapse a&~a) *)
  check "SBD101 on a&~a" true (has_rule "SBD101" (analyze "a&~a"));
  (* SBD102: unsat by cheap ⊥-propagation (disjoint character classes
     survive the constructors, which compare predicate leaves only by
     identity) *)
  check "SBD102 on disjoint classes" true
    (has_rule "SBD102" (analyze "[a-m]&[n-z]"));
  (* SBD103: a dead proper subterm inside a live pattern *)
  check "SBD103 on dead branch" true
    (has_rule "SBD103" (analyze "x([a-c]&[x-z])y|ok"));
  (* SBD105: double complement in the source (the AST normalizes it) *)
  check "SBD105 on ~~a" true (has_rule "SBD105" (analyze ~source:"~~a" "~~a"));
  (* SBD106: complement over a counted repetition *)
  check "SBD106 on compl-counter" true
    (has_rule "SBD106" (analyze "~(a{8,16})"));
  (* SBD107: two counter-carrying conjuncts *)
  check "SBD107 on counter intersection" true
    (has_rule "SBD107" (analyze ".*a{10}.*&.*b{12}.*"));
  (* SBD108: heavy unfolding *)
  check "SBD108 on a{5000}" true (has_rule "SBD108" (analyze "a{5000}"));
  (* clean patterns stay clean *)
  check_int "no findings on ab*c" 0 (List.length (analyze "ab*c").An.findings);
  (* severities are spelled as stable strings *)
  check_str "error name" "error" (An.severity_name An.Error);
  check_str "warning name" "warning" (An.severity_name An.Warning);
  check_str "info name" "info" (An.severity_name An.Info)

(* -- Layer 2: bounded semantic verdicts ------------------------------- *)

let test_semantic_verdicts () =
  let analyze s = An.analyze ~budget:2_000 (re s) in
  (* proved empty: intersection of disjoint one-letter languages *)
  let rep = analyze "[a-m]+&[n-z]+" in
  (match rep.An.semantic with
  | Some sem ->
    check "proved empty" true (sem.An.empty = An.Proved);
    check "SBD201 emitted" true (has_rule "SBD201" rep)
  | None -> Alcotest.fail "layer 2 missing");
  (* refuted empty: the witness is validated by the oracle *)
  let rep = analyze "ab*c" in
  (match rep.An.semantic with
  | Some sem -> (
    check "nonempty refuted" true (sem.An.empty = An.Refuted);
    match sem.An.witness with
    | Some w -> check "witness accepted by oracle" true (Ref.matches (re "ab*c") w)
    | None -> Alcotest.fail "refuted-empty must carry a witness")
  | None -> Alcotest.fail "layer 2 missing");
  (* proved universal *)
  let rep = analyze ".*|~(.*)" in
  (match rep.An.semantic with
  | Some sem ->
    check "universal proved" true (sem.An.universal = An.Proved);
    check "SBD202 emitted" true (has_rule "SBD202" rep)
  | None -> Alcotest.fail "layer 2 missing");
  (* tiny budget: verdicts degrade to Unknown, never to a guess *)
  let rep = An.analyze ~budget:1 (re "(a|b){2,6}c&.*d.*") in
  match rep.An.semantic with
  | Some sem ->
    check "budget-starved empty is unknown" true (sem.An.empty = An.Unknown)
  | None -> Alcotest.fail "layer 2 missing"

(* -- entailment lints (SBD205/SBD206, containment-backed) ------------- *)

let find_rule rule (rep : An.report) =
  List.find_opt (fun (f : An.finding) -> f.An.rule = rule) rep.An.findings

(* all words of length <= 3 over {a, b} *)
let short_words =
  let letters = [ Char.code 'a'; Char.code 'b' ] in
  let extend ws = List.concat_map (fun w -> List.map (fun c -> c :: w) letters) ws in
  let l1 = extend [ [] ] in
  let l2 = extend l1 in
  ([] :: l1) @ l2 @ extend l2

(* the suggested replacement must be language-equal to the original:
   cross-check with the reference matcher on all short words *)
let check_replacement (orig : R.t) (f : An.finding) =
  match f.An.replacement with
  | None -> Alcotest.failf "%s must carry a replacement" f.An.rule
  | Some src ->
    let simp = re src in
    List.iter
      (fun w ->
        check
          (Printf.sprintf "%s replacement %S agrees" f.An.rule src)
          (Ref.matches orig w) (Ref.matches simp w))
      short_words

let test_entailment_lints () =
  let analyze s = An.analyze ~source:s (re s) in
  (* SBD205: a ⊑ a*, so the branch "a" of a|a* is redundant *)
  let rep = analyze "a|a*" in
  (match find_rule "SBD205" rep with
  | Some f ->
    check "SBD205 names the branch" true (f.An.subterm <> None);
    check_replacement (re "a|a*") f
  | None -> Alcotest.fail "SBD205 expected on a|a*");
  (* SBD206: in (a|b)&a the conjunct a|b is entailed by a *)
  let rep = analyze "(a|b)&a" in
  (match find_rule "SBD206" rep with
  | Some f -> check_replacement (re "(a|b)&a") f
  | None -> Alcotest.fail "SBD206 expected on (a|b)&a");
  (* textbook pair: the two branches denote the same language *)
  check "SBD205 on equal-language branches" true
    (has_rule "SBD205" (analyze "(ab)*a|a(ba)*"));
  (* incomparable branches / conjuncts stay clean *)
  check "no SBD205 on a|b" false (has_rule "SBD205" (analyze "a|b"));
  check "no SBD206 on .*a.*&.*b.*" false
    (has_rule "SBD206" (analyze ".*a.*&.*b.*"));
  (* the JSON rendering carries the replacement *)
  match find_rule "SBD205" (analyze "a|a*") with
  | None -> Alcotest.fail "SBD205 expected"
  | Some f -> (
    match An.json_of_finding f with
    | J.Obj kvs ->
      check "json replacement is a string" true
        (match List.assoc_opt "replacement" kvs with
        | Some (J.Str _) -> true
        | Some (J.Null | J.Bool _ | J.Int _ | J.Float _ | J.Arr _ | J.Obj _)
        | None ->
          false)
    | J.Null | J.Bool _ | J.Int _ | J.Float _ | J.Str _ | J.Arr _ ->
      Alcotest.fail "finding must render as a JSON object")

(* -- hints and their consumers ---------------------------------------- *)

let test_hints () =
  let hints s = (An.analyze ~layer2:false (re s)).An.hints in
  (* the analyzer's fallback cap must stay in sync with the engine's *)
  check_int "default_max_states in sync" Sbd_engine.Dfa.default_max_states
    An.default_max_states;
  let easy = hints "ab*c" in
  check_str "literal risk" "low" (An.risk_name easy.An.risk);
  check "literal gets small cap" true
    (easy.An.max_states < An.default_max_states);
  check "literal prefers engine" true easy.An.prefer_engine;
  check "ascii pattern is byte-safe" true easy.An.byte_mode_ok;
  let blowup = hints "~(.*a{8,16}.*)&.*b{8,16}.*" in
  check_str "blowup risk" "high" (An.risk_name blowup.An.risk);
  check "blowup gets headroom" true
    (blowup.An.max_states > An.default_max_states);
  check "blowup avoids engine" true (not blowup.An.prefer_engine);
  check "blowup gets bigger solver budget" true
    (blowup.An.solve_budget > easy.An.solve_budget);
  let unicode = hints "h\\u{4E2D}llo" in
  check "non-ascii is not byte-safe" false unicode.An.byte_mode_ok

(* The hints must demonstrably change consumer behavior: the matcher
   picks its engine state cap from the analyzer, so an easy literal and
   a blowup-prone pattern get different caps. *)
let test_hint_consumer () =
  let cap s = Matcher.engine_max_states (Matcher.create (re s)) in
  let easy = cap "ab*c" and hard = cap "~(.*a{8,16}.*)&.*b{8,16}.*" in
  check "easy pattern capped below default" true
    (easy < Sbd_engine.Dfa.default_max_states);
  check "hard pattern capped above default" true
    (hard > Sbd_engine.Dfa.default_max_states);
  check "hints change consumer behavior" true (easy <> hard);
  (* and the worker agrees with the matcher-side decision *)
  let (module W) = Sbd_service.Worker.create () in
  (match W.engine_max_states "ab*c" with
  | Ok n -> check "worker easy cap" true (n < Sbd_engine.Dfa.default_max_states)
  | Error msg -> Alcotest.fail msg);
  match W.engine_max_states "~(.*a{8,16}.*)&.*b{8,16}.*" with
  | Ok n -> check "worker hard cap" true (n > Sbd_engine.Dfa.default_max_states)
  | Error msg -> Alcotest.fail msg

(* -- machine-readable report ------------------------------------------ *)

let test_json_shape () =
  let rep = An.analyze ~source:"[a-m]+&[n-z]+" (re "[a-m]+&[n-z]+") in
  match An.json_of_report rep with
  | J.Obj kvs ->
    let mem k = List.assoc_opt k kvs in
    check "pattern present" true (mem "pattern" = Some (J.Str "[a-m]+&[n-z]+"));
    (match mem "metrics" with
    | Some (J.Obj ms) ->
      check "metrics.size" true (List.assoc_opt "size" ms <> None);
      check "metrics.fragment" true
        (List.assoc_opt "fragment" ms = Some (J.Str "B(RE)"));
      check "metrics.difficulty" true (List.assoc_opt "difficulty" ms <> None)
    | _ -> Alcotest.fail "metrics object missing");
    (match mem "findings" with
    | Some (J.Arr (J.Obj f :: _)) ->
      check "finding.rule" true (List.assoc_opt "rule" f <> None);
      check "finding.severity" true (List.assoc_opt "severity" f <> None);
      check "finding.message" true (List.assoc_opt "message" f <> None)
    | _ -> Alcotest.fail "findings array missing");
    (match mem "semantic" with
    | Some (J.Obj s) ->
      check "semantic.empty proved" true
        (List.assoc_opt "empty" s = Some (J.Str "proved"))
    | _ -> Alcotest.fail "semantic object missing");
    (match mem "hints" with
    | Some (J.Obj h) ->
      check "hints.risk" true (List.assoc_opt "risk" h <> None);
      check "hints.max_states" true (List.assoc_opt "max_states" h <> None)
    | _ -> Alcotest.fail "hints object missing");
    (* a proved-empty report carries the SBD201 error *)
    check "SBD201 in rules" true (List.mem "SBD201" (rules rep))
  | _ -> Alcotest.fail "report must be a JSON object"

(* -- forced-literal extraction (engine prefilter hints) --------------- *)

module Lit = Sbd_analysis.Literals.Make (R)

let cps s = List.init (String.length s) (fun i -> Char.code s.[i])

(* Every claim of [Lit.study] is one-sided ("all words of L(r) contain
   this"), so the tests pin the exact literals on shapes the engine
   prefilter relies on: concat extension and seam bridging, Or taking
   the common affixes, And taking any branch, loop unrolling, the
   nullable vacuity, and the cap clamp. *)
let test_literals () =
  let study p = Lit.study (re p) in
  let fac p = (study p).Lit.factor in
  let check_cps = Alcotest.(check (list int)) in
  check_cps "dotstar factor" (cps "needle") (fac ".*needle.*");
  check_cps "literal factor" (cps "needle") (fac "needle");
  (match (study "needle").Lit.exact with
  | Some w -> check_cps "literal is exact" (cps "needle") w
  | None -> Alcotest.fail "a literal pattern must be exact");
  (* a forced suffix of the left factor meets a forced prefix of the
     right across the concat seam *)
  check_cps "seam bridge" (cps "cd") (fac "(a|b)cd(a|b)");
  check_cps "or common prefix" (cps "ab") ((study "abc|abd").Lit.prefix);
  check_cps "or common suffix" (cps "bc") ((study "abc|xbc").Lit.suffix);
  check_int "and takes the longest branch" 3
    (List.length (fac ".*abc.*&.*xyz.*"));
  check_cps "loop unrolls an exact body" (cps "ababab") (fac "(ab){3}");
  (match (study "(ab){3}").Lit.exact with
  | Some w -> check_cps "bounded loop stays exact" (cps "ababab") w
  | None -> Alcotest.fail "(ab){3} must be exact");
  check_cps "nullable forces nothing" [] (fac "a*");
  check_cps "complement forces nothing" [] (fac "~(abc)");
  check_int "clamped to the cap" Lit.cap (List.length (fac "a{30}"));
  check "over-cap exact demoted, not truncated" true
    ((study "a{30}").Lit.exact = None);
  check_cps "date forces its dash" [ Char.code '-' ]
    (fac "\\d{4}-[a-zA-Z]{3}-\\d{2}")

(* Soundness spot-check over the handwritten corpus: any Proved verdict
   must agree with the reference matcher on short words (the fuzzer does
   this at scale; here it guards the test suite). *)
let test_corpus_soundness () =
  let words =
    let letters = [ 'a'; 'b'; 'c'; '0'; '1' ] in
    [] :: List.concat_map (fun c -> [ [ Char.code c ] ]) letters
    @ List.concat_map
        (fun c -> List.map (fun d -> [ Char.code c; Char.code d ]) letters)
        letters
  in
  List.iter
    (fun (inst : Sbd_benchgen.Instance.t) ->
      match P.parse inst.pattern with
      | Error _ -> ()
      | Ok r -> (
        let rep = An.analyze ~budget:500 r in
        match rep.An.semantic with
        | Some sem ->
          (if sem.An.empty = An.Proved then
             List.iter
               (fun w ->
                 if Ref.matches r w then
                   Alcotest.failf "unsound proved-empty: %s" inst.pattern)
               words);
          if sem.An.universal = An.Proved then
            List.iter
              (fun w ->
                if not (Ref.matches r w) then
                  Alcotest.failf "unsound proved-universal: %s" inst.pattern)
              words
        | None -> ()))
    (Sbd_benchgen.Standard.handwritten ())

(* -- abstract domains (lib/analysis/absdom.ml) ------------------------ *)

module Ab = Sbd_absdom.Absdom.Make (R)

(* Length lattice: ultimately-periodic sets with CRT intersection. *)
let test_absdom_lengths () =
  let len pat = (Ab.summarize (re pat)).Ab.len in
  let l3 = len "a{3}" in
  check_int "a{3} lmin" 3 l3.Ab.lmin;
  check "a{3} lmax" true (l3.Ab.lmax = Some 3);
  let evens = len "(aa)*" in
  check_int "(aa)* lmin" 0 evens.Ab.lmin;
  check "(aa)* unbounded" true (evens.Ab.lmax = None);
  check_int "(aa)* stride" 2 evens.Ab.stride;
  (* CRT: x ≡ 0 (mod 2) ∧ x ≡ 1 (mod 3) has least solution 4, lcm 6 *)
  let crt = Ab.inter_len evens (len "a(aaa)*") in
  check_int "CRT lmin" 4 crt.Ab.lmin;
  check_int "CRT stride" 6 crt.Ab.stride;
  check "CRT feasible" true (Ab.feasible crt);
  (* incompatible residues: evens ∩ odds is length-free *)
  check "evens ∩ odds infeasible" false
    (Ab.feasible (Ab.inter_len evens (len "a(aa)*")));
  (* membership predicate agrees with the progression *)
  check "admits 10" true (Ab.len_admits crt 10);
  check "rejects 8" false (Ab.len_admits crt 8);
  (* concat adds, union joins on the gcd *)
  let c = Ab.concat_len l3 evens in
  check_int "concat lmin" 3 c.Ab.lmin;
  check_int "concat stride" 2 c.Ab.stride

(* Emptiness verdicts from each abstraction, and their absence when the
   constraints are feasible. *)
let test_absdom_emptiness () =
  let empty pat = (Ab.summarize (re pat)).Ab.empty = Ab.Empty in
  (* length: [3,3] ∩ [5,5] *)
  check "a{3}&a{5} empty" true (empty "a{3}&a{5}");
  (* length residues: even ∩ odd *)
  check "(aa)*&a(aa)* empty" true (empty "(aa)*&a(aa)*");
  (* characters: possible sets are disjoint and lmin > 0 *)
  check "ab&cd empty" true (empty "ab&cd");
  (* characters: a required class outside the possible set *)
  check "required vs possible" true (empty ".*a.*&b*");
  (* feasible intersections stay undecided-or-nonempty *)
  check "a{3,5}&a{4} feasible" false (empty "a{3,5}&a{4}");
  check "same parity feasible" false (empty "(aa)*&(aaaa)*")

(* presolve: verdicts must be sound and witnesses must actually match
   (validated here against the independent reference matcher). *)
let test_absdom_presolve () =
  let word w = List.init (String.length w) (fun i -> Char.code w.[i]) in
  (match Ab.presolve (re "a{3}&a{5}") with
  | Ab.Unsat_proved -> ()
  | Ab.Sat_witnessed _ | Ab.Unknown ->
    Alcotest.fail "a{3}&a{5} must be proved unsat");
  (match Ab.presolve (re "a*") with
  | Ab.Sat_witnessed w -> check "nullable witness is ε" true (w = "")
  | Ab.Unsat_proved | Ab.Unknown ->
    Alcotest.fail "a* must be witnessed sat");
  List.iter
    (fun pat ->
      match Ab.presolve (re pat) with
      | Ab.Sat_witnessed w ->
        check (pat ^ " witness matches") true (Ref.matches (re pat) (word w))
      | Ab.Unsat_proved -> Alcotest.failf "unsound unsat on %s" pat
      | Ab.Unknown -> Alcotest.failf "%s should be witnessed" pat)
    [ "ab|cd"; "a{2,4}"; "\\d{4}-\\d{2}"; "(ab)*ab" ];
  (* boolean intersections may or may not be witnessed, but a committed
     verdict must be correct *)
  (match Ab.presolve (re "[a-c]{3}&[b-d]{3}") with
  | Ab.Sat_witnessed w ->
    check "inter witness matches" true
      (Ref.matches (re "[a-c]{3}&[b-d]{3}") (word w))
  | Ab.Unknown -> ()
  | Ab.Unsat_proved -> Alcotest.fail "unsound unsat on [a-c]{3}&[b-d]{3}");
  (* abstractly undecidable: empty, but only a real derivation sees it —
     the pre-solver must answer Unknown, never guess *)
  (match Ab.presolve (re "a{80}&~((aa){40})") with
  | Ab.Unknown -> ()
  | Ab.Unsat_proved | Ab.Sat_witnessed _ ->
    Alcotest.fail "deep boolean pattern must stay Unknown")

let suite =
  ( "analysis",
    [ Alcotest.test_case "metrics and fragments" `Quick test_metrics
    ; Alcotest.test_case "lint rules" `Quick test_lint_rules
    ; Alcotest.test_case "semantic verdicts" `Quick test_semantic_verdicts
    ; Alcotest.test_case "entailment lints" `Quick test_entailment_lints
    ; Alcotest.test_case "hints" `Quick test_hints
    ; Alcotest.test_case "hints drive consumers" `Quick test_hint_consumer
    ; Alcotest.test_case "json report shape" `Quick test_json_shape
    ; Alcotest.test_case "forced literals" `Quick test_literals
    ; Alcotest.test_case "corpus soundness" `Quick test_corpus_soundness
    ; Alcotest.test_case "absdom lengths" `Quick test_absdom_lengths
    ; Alcotest.test_case "absdom emptiness" `Quick test_absdom_emptiness
    ; Alcotest.test_case "absdom presolve" `Quick test_absdom_presolve ] )
