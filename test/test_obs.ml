(* Tests for the observability/resource-governance layer (counters,
   spans, deadlines, JSON) and for the instrumentation threaded through
   the solver stack: deadline aborts on pathological DNF expansions,
   memo-table stats, witness escaping, and the harness statistics. *)

module A = Sbd_alphabet.Bdd
module R = Sbd_regex.Regex.Make (A)
module P = Sbd_regex.Parser.Make (R)
module D = Sbd_core.Deriv.Make (R)
module S = Sbd_solver.Solve.Make (R)
module Ref = Sbd_classic.Refmatch.Make (R)
module Obs = Sbd_obs.Obs
module H = Sbd_harness.Harness

let re = P.parse_exn
let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* -- counters and spans -------------------------------------------------- *)

let test_counters () =
  let c = Obs.Counter.make "test.obs.counter" in
  let v0 = Obs.Counter.value c in
  Obs.Counter.incr c;
  Obs.Counter.add c 4;
  check_int "incr+add" (v0 + 5) (Obs.Counter.value c);
  Obs.Counter.max_to c 2;
  check_int "max_to below is no-op" (v0 + 5) (Obs.Counter.value c);
  Obs.Counter.max_to c 1000;
  check_int "max_to above raises value" 1000 (Obs.Counter.value c);
  check_str "name" "test.obs.counter" (Obs.Counter.name c);
  (* same name, same cell *)
  let c' = Obs.Counter.make "test.obs.counter" in
  Obs.Counter.incr c';
  check_int "global registry by name" 1001 (Obs.Counter.value c);
  (* disabled mode drops recordings *)
  Obs.set_enabled false;
  Obs.Counter.incr c;
  Obs.Counter.add c 7;
  Obs.Counter.max_to c 5000;
  check_int "disabled: no recording" 1001 (Obs.Counter.value c);
  Obs.set_enabled true;
  (* snapshot carries the counter *)
  let snap = Obs.snapshot () in
  check "snapshot has counter" true
    (List.mem_assoc "test.obs.counter" snap
    && List.assoc "test.obs.counter" snap = 1001.0)

let test_spans () =
  let sp = Obs.Span.make "test.obs.span" in
  let n0 = Obs.Span.count sp in
  let r = Obs.Span.time sp (fun () -> 42) in
  check_int "thunk result" 42 r;
  check_int "one hit" (n0 + 1) (Obs.Span.count sp);
  Obs.Span.add sp 0.25;
  check_int "add charges a hit" (n0 + 2) (Obs.Span.count sp);
  check "total grew" true (Obs.Span.total sp >= 0.25);
  (* exceptions propagate but the duration is still charged *)
  (try Obs.Span.time sp (fun () -> failwith "boom") with Failure _ -> ());
  check_int "exceptional hit" (n0 + 3) (Obs.Span.count sp);
  let snap = Obs.snapshot () in
  check "snapshot has span seconds" true (List.mem_assoc "test.obs.span.s" snap);
  check "snapshot has span count" true
    (List.assoc "test.obs.span.n" snap = float_of_int (n0 + 3))

(* -- deadlines ----------------------------------------------------------- *)

let test_deadline () =
  check "none never expires" false (Obs.Deadline.expired Obs.Deadline.none);
  check "none is none" true (Obs.Deadline.is_none Obs.Deadline.none);
  Obs.Deadline.check Obs.Deadline.none;
  (* node budget: checks charge one unit each; well past the clock
     stride so throttled sampling cannot mask the expiry *)
  let dl = Obs.Deadline.make ~nodes:500 () in
  check "fresh deadline alive" false (Obs.Deadline.expired dl);
  let raised = ref false in
  (try
     for _ = 1 to 1000 do
       Obs.Deadline.check dl
     done
   with Obs.Deadline_exceeded what ->
     raised := true;
     check_str "nodes exhausted" "nodes" what);
  check "node budget fired" true !raised;
  check "expired afterwards" true (Obs.Deadline.expired dl);
  (* explicit charge counts against the same budget *)
  let dl2 = Obs.Deadline.make ~nodes:10 () in
  Obs.Deadline.charge dl2 20;
  check "charge expires" true (Obs.Deadline.expired dl2);
  (* wall clock: an already-elapsed deadline fires within one stride *)
  let dl3 = Obs.Deadline.of_seconds 0.0 in
  let raised3 = ref false in
  (try
     for _ = 1 to 1000 do
       Obs.Deadline.check dl3
     done
   with Obs.Deadline_exceeded what ->
     raised3 := true;
     check_str "wall exhausted" "wall" what);
  check "wall deadline fired" true !raised3;
  check "elapsed nonnegative" true (Obs.Deadline.elapsed dl3 >= 0.0);
  check "remaining reported" true (Obs.Deadline.remaining_time dl3 <> None)

(* -- json ---------------------------------------------------------------- *)

let test_json () =
  let module J = Obs.Json in
  check_str "null" "null" (J.to_string J.Null);
  check_str "bool" "true" (J.to_string (J.Bool true));
  check_str "int" "-3" (J.to_string (J.Int (-3)));
  check_str "string escaping" "\"a\\\"b\\\\c\\n\""
    (J.to_string (J.Str "a\"b\\c\n"));
  check_str "control chars" "\"\\u0001\"" (J.to_string (J.Str "\x01"));
  check_str "array" "[1,2]" (J.to_string (J.Arr [ J.Int 1; J.Int 2 ]));
  check_str "object" "{\"a\":1,\"b\":[]}"
    (J.to_string (J.Obj [ ("a", J.Int 1); ("b", J.Arr []) ]));
  check_str "nan is neutralised" "0" (J.to_string (J.Float Float.nan));
  (* pretty rendering stays parseable-shaped and newline-terminated
     object entries *)
  let pretty = J.to_string_pretty (J.Obj [ ("k", J.Int 1) ]) in
  check "pretty contains key" true
    (String.length pretty > 0
    && String.index_opt pretty '\n' <> None
    && String.index_opt pretty 'k' <> None)

(* -- deadline threaded through the solver -------------------------------- *)

(* An intersection of alternations that all start with the same letter:
   clean-DNF pruning cannot collapse the cross product, so the very
   first transition computation builds 8^8 meets.  Without a deadline
   this runs essentially forever at any step budget. *)
let blowup_pattern =
  let factor k =
    String.concat "|"
      (List.init 8 (fun i ->
           Printf.sprintf "a%c.*" (Char.chr (Char.code 'a' + k + i))))
  in
  String.concat "&" (List.init 8 (fun k -> "(" ^ factor k ^ ")"))

let test_deadline_blowup () =
  let s = S.create_session () in
  let t0 = Obs.now () in
  let result = S.solve ~deadline:0.05 s (re blowup_pattern) in
  let elapsed = Obs.now () -. t0 in
  (match result with
  | S.Unknown why -> check_str "deadline reason" "deadline" why
  | S.Sat _ | S.Unsat -> Alcotest.fail "expected unknown under deadline");
  (* acceptance bound: the query returns within ~2x the deadline *)
  check
    (Printf.sprintf "returned promptly (%.3fs)" elapsed)
    true (elapsed < 1.0);
  check "deadline hit recorded" true (s.S.deadline_hits > 0)

let test_deadline_harmless () =
  (* a generous deadline must not change easy answers *)
  let s = S.create_session () in
  (match S.solve ~deadline:10.0 s (re "a{2,3}&~(.*b)") with
  | S.Sat w -> check "witness ok" true (Ref.matches (re "a{2,3}&~(.*b)") w)
  | _ -> Alcotest.fail "expected sat under generous deadline");
  match S.solve ~deadline:10.0 s (re "a{2}&a{3}") with
  | S.Unsat -> ()
  | _ -> Alcotest.fail "expected unsat under generous deadline"

(* -- instrumentation surfaces -------------------------------------------- *)

let test_deriv_stats () =
  let d1, n1, t1 = D.stats () in
  let r = re "(ab|cd)*&~(.*dd.*)" in
  ignore (D.transitions r);
  ignore (D.delta_dnf r);
  let d2, n2, t2 = D.stats () in
  check "delta table grew" true (d2 > d1);
  check "dnf table grew" true (n2 > n1);
  check "transitions table grew" true (t2 > t1)

let test_session_stats () =
  let s = S.create_session () in
  (* presolve off: the expansion/frontier counters are search-internal *)
  (match S.solve ~presolve:false s (re "a*b") with
  | S.Sat _ -> ()
  | _ -> Alcotest.fail "expected sat");
  let stats = S.session_stats s in
  let get k = List.assoc k stats in
  check "queries counted" true (get "session.queries" >= 1.0);
  check "expansions counted" true (get "session.expansions" >= 1.0);
  check "wall time measured" true (get "session.wall_time_s" >= 0.0);
  check "graph vertices" true (get "session.graph_vertices" >= 1.0);
  check "peak frontier" true (get "session.peak_frontier" >= 1.0)

(* -- witness printing ---------------------------------------------------- *)

let test_witness_escaping () =
  (* exactly one layer of escaping, including non-ASCII code points *)
  check_str "plain" "abc" (S.string_of_witness [ 0x61; 0x62; 0x63 ]);
  check_str "quote and backslash" "a\\\"b\\\\c"
    (S.string_of_witness [ 0x61; 0x22; 0x62; 0x5C; 0x63 ]);
  check_str "non-ascii" "\\u{00E9}x" (S.string_of_witness [ 0xE9; 0x78 ]);
  check_str "control" "\\u{0007}" (S.string_of_witness [ 0x07 ]);
  let printed = Format.asprintf "%a" S.pp_result (S.Sat [ 0xE9; 0x22 ]) in
  (* pp_result must not re-escape the already-escaped string *)
  check_str "pp_result single layer" "sat \"\\u{00E9}\\\"\"" printed

let test_witness_nonascii_solve () =
  let s = S.create_session () in
  let r = re "\\u{00E9}x" in
  match S.solve s r with
  | S.Sat w ->
    Alcotest.(check (list int)) "code points" [ 0xE9; 0x78 ] w;
    check_str "rendering" "\\u{00E9}x" (S.string_of_witness w)
  | _ -> Alcotest.fail "expected sat"

(* -- witness reconstruction regressions ---------------------------------- *)

let test_witness_depth_saturation () =
  (* side constraints push the search deep before a witness exists; the
     reconstructed word must satisfy both the regex and the sides *)
  let s = S.create_session () in
  let r = re ".*\\d.*&~(.*01.*)" in
  let not_zero = A.neg (A.of_ranges [ (Char.code '0', Char.code '0') ]) in
  let side = { S.no_side with S.min_len = 9; S.char_at = [ (0, not_zero) ] } in
  (match S.solve ~side s r with
  | S.Sat w ->
    check "depth >= min_len" true (List.length w >= 9);
    check "matches regex" true (Ref.matches r w);
    check "respects char_at" true (List.hd w <> Char.code '0')
  | _ -> Alcotest.fail "expected sat under deep side constraints");
  (* same query under BFS: still a valid witness, and none shorter *)
  match S.solve ~side ~strategy:S.Bfs s r with
  | S.Sat w ->
    check_int "bfs shortest at saturation depth" 9 (List.length w);
    check "bfs witness matches" true (Ref.matches r w)
  | _ -> Alcotest.fail "expected sat under BFS"

let test_bfs_shortest_guarantee () =
  let s = S.create_session () in
  let cases =
    [ ("a{3}|b{2}", 2); ("(abc){2}|xy|a{7}", 2); (".*\\d.*&~(.*01.*)", 1)
    ; ("a{4,}", 4) ]
  in
  List.iter
    (fun (pat, len) ->
      match S.solve ~strategy:S.Bfs s (re pat) with
      | S.Sat w ->
        check_int (Printf.sprintf "shortest for %s" pat) len (List.length w)
      | _ -> Alcotest.failf "expected sat for %s" pat)
    cases

(* -- harness statistics -------------------------------------------------- *)

let test_median () =
  let eps = 1e-9 in
  let feq msg a b = check msg true (Float.abs (a -. b) < eps) in
  feq "singleton" 1.0 (H.median [ 1.0 ]);
  feq "odd" 2.0 (H.median [ 3.0; 1.0; 2.0 ]);
  (* even length: average of the two middle elements *)
  feq "even" 1.5 (H.median [ 2.0; 1.0 ]);
  feq "even 4" 2.5 (H.median [ 4.0; 1.0; 3.0; 2.0 ]);
  feq "empty" 0.0 (H.median [])

let suite =
  ( "obs",
    [ Alcotest.test_case "counters" `Quick test_counters
    ; Alcotest.test_case "spans" `Quick test_spans
    ; Alcotest.test_case "deadlines" `Quick test_deadline
    ; Alcotest.test_case "json builder" `Quick test_json
    ; Alcotest.test_case "deadline aborts blowup" `Quick test_deadline_blowup
    ; Alcotest.test_case "deadline leaves easy queries alone" `Quick
        test_deadline_harmless
    ; Alcotest.test_case "deriv memo stats" `Quick test_deriv_stats
    ; Alcotest.test_case "session stats" `Quick test_session_stats
    ; Alcotest.test_case "witness escaping" `Quick test_witness_escaping
    ; Alcotest.test_case "non-ascii witness" `Quick test_witness_nonascii_solve
    ; Alcotest.test_case "witness under depth saturation" `Quick
        test_witness_depth_saturation
    ; Alcotest.test_case "bfs shortest witness" `Quick test_bfs_shortest_guarantee
    ; Alcotest.test_case "harness median" `Quick test_median ] )
